"""Engine env-knob parsing: one helper, one error shape.

``REPRO_KERNEL``, ``REPRO_SCHED``, ``REPRO_SCHED_BLOCK`` and
``REPRO_SWEEP`` all funnel through :mod:`repro.engine.envconf`, so a
typo'd value always produces a :class:`ConfigError` that names the
variable, the offending value, and the accepted ones — no matter which
subsystem reads the knob.
"""

from __future__ import annotations

import pytest

from repro.config import xeon20mb
from repro.engine import env_choice, env_positive_int, resolve_sweep_mode
from repro.engine.arraypath import resolve_kernel_name
from repro.engine.scheduler import _resolve_block_chunks, _resolve_sched_mode
from repro.errors import ConfigError

ALL_VARS = ("REPRO_KERNEL", "REPRO_SCHED", "REPRO_SCHED_BLOCK", "REPRO_SWEEP")


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in ALL_VARS:
        monkeypatch.delenv(var, raising=False)


class TestEnvChoice:
    def test_unset_returns_default(self):
        assert env_choice("REPRO_TEST_KNOB", ("a", "b"), "a") == "a"

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert env_choice("REPRO_TEST_KNOB", ("a", "b"), "a") == "a"

    def test_set_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "b")
        assert env_choice("REPRO_TEST_KNOB", ("a", "b"), "a") == "b"

    def test_invalid_value_names_variable_and_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "c")
        with pytest.raises(ConfigError, match=r"REPRO_TEST_KNOB.*'a' or 'b'"):
            env_choice("REPRO_TEST_KNOB", ("a", "b"), "a")

    def test_invalid_default_rejected_too(self):
        # A bad programmatic default (e.g. a config-file field routed
        # through the same helper) fails identically to a bad env value.
        with pytest.raises(ConfigError, match="'c'"):
            env_choice("REPRO_TEST_KNOB", ("a", "b"), "c")

    def test_label_overrides_variable_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "c")
        with pytest.raises(ConfigError, match="knob/field"):
            env_choice("REPRO_TEST_KNOB", ("a", "b"), "a", label="knob/field")


class TestEnvPositiveInt:
    def test_unset_and_blank_return_default(self, monkeypatch):
        assert env_positive_int("REPRO_TEST_INT", 64) == 64
        monkeypatch.setenv("REPRO_TEST_INT", "")
        assert env_positive_int("REPRO_TEST_INT", 64) == 64

    def test_set_value_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "128")
        assert env_positive_int("REPRO_TEST_INT", 64) == 128

    @pytest.mark.parametrize("bad", ["zero", "1.5", "0", "-8"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_TEST_INT", bad)
        with pytest.raises(ConfigError, match="REPRO_TEST_INT"):
            env_positive_int("REPRO_TEST_INT", 64)


class TestEachKnob:
    """The four real variables, each through its resolver."""

    def test_repro_kernel(self, monkeypatch):
        xeon = xeon20mb()
        assert resolve_kernel_name(xeon) == "arrays"
        monkeypatch.setenv("REPRO_KERNEL", "lists")
        assert resolve_kernel_name(xeon) == "lists"
        monkeypatch.setenv("REPRO_KERNEL", "simd")
        with pytest.raises(ConfigError, match="REPRO_KERNEL"):
            resolve_kernel_name(xeon)

    def test_repro_sched(self, monkeypatch):
        assert _resolve_sched_mode() == "macro"
        monkeypatch.setenv("REPRO_SCHED", "chunk")
        assert _resolve_sched_mode() == "chunk"
        monkeypatch.setenv("REPRO_SCHED", "turbo")
        with pytest.raises(ConfigError, match="REPRO_SCHED"):
            _resolve_sched_mode()

    def test_repro_sched_block(self, monkeypatch):
        default = _resolve_block_chunks()
        assert default >= 8
        monkeypatch.setenv("REPRO_SCHED_BLOCK", "512")
        assert _resolve_block_chunks() == 512
        monkeypatch.setenv("REPRO_SCHED_BLOCK", "2")
        assert _resolve_block_chunks() == 8  # floor: one workload cycle
        monkeypatch.setenv("REPRO_SCHED_BLOCK", "lots")
        with pytest.raises(ConfigError, match="REPRO_SCHED_BLOCK"):
            _resolve_block_chunks()

    def test_repro_sweep(self, monkeypatch):
        assert resolve_sweep_mode() == "per-point"
        monkeypatch.setenv("REPRO_SWEEP", "batched")
        assert resolve_sweep_mode() == "batched"
        monkeypatch.setenv("REPRO_SWEEP", "vector")
        with pytest.raises(ConfigError, match="REPRO_SWEEP"):
            resolve_sweep_mode()
