"""Single-socket Node vs SocketSimulator equivalence.

The node layer's gate (ISSUE: DESIGN decision 12): a 1-socket
:class:`~repro.engine.node.NodeSimulator` must be *bit-identical* to
:class:`~repro.engine.socket_sim.SocketSimulator` — every event counter
equal as an integer, every time equal as a float (hex-exact) — under
every scheduler mode. The facade dispatch, the placement machinery and
the remote-fill accounting must all collapse to exact no-ops when there
is only one socket.

Runnable under ``REPRO_NO_CKERNEL=1`` (CI's no-ckernel leg) — the modes
then exercise the pure-Python chunk kernel and macro driver.
"""

from __future__ import annotations

import pytest

from repro.config import NodeConfig, tiny_socket
from repro.engine import NodeSimulator, SocketSimulator
from repro.units import GiB
from repro.workloads import BWThr, CSThr, HotColdProbe, StreamTriad, UniformDist
from repro.workloads.synthetic import ProbabilisticBenchmark

INT_COUNTERS = (
    "accesses", "l1_hits", "l2_hits", "l3_hits", "prefetch_hits",
    "l3_misses", "prefetch_fills", "writebacks", "compute_ops",
    "remote_accesses", "remote_fills",
)
NS_COUNTERS = ("compute_ns", "stall_ns", "remote_ns", "elapsed_ns")

#: Same triangle as test_sched_equivalence: chunk == macro-C == macro-py.
MODES = (
    ("chunk", {"REPRO_SCHED": "chunk"}),
    ("macro", {"REPRO_SCHED": "macro"}),
    ("macro-py", {"REPRO_SCHED": "macro", "REPRO_NO_CSCHED": "1"}),
)

SCHED_ENV_VARS = ("REPRO_SCHED", "REPRO_NO_CSCHED", "REPRO_SCHED_BLOCK")


def _set_mode(monkeypatch, env):
    for var in SCHED_ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    for var, val in env.items():
        monkeypatch.setenv(var, val)


def one_socket_node(socket) -> NodeConfig:
    return NodeConfig(
        socket=socket,
        n_sockets=1,
        dram_bytes=GiB,
        remote_penalty_ns=60.0,
        link_bandwidth_Bps=1e9,
        page_bytes=1024,
    )


def roster(sim):
    """Mixed roster: finite main + infinite interference threads."""
    sim.add_thread(
        ProbabilisticBenchmark(UniformDist(), 48 * 1024, n_accesses=12_000),
        main=True,
    )
    sim.add_thread(StreamTriad(array_bytes=8 * 1024), main=True)
    sim.add_thread(BWThr(buffer_bytes=16 * 1024, n_buffers=3))
    sim.add_thread(CSThr(buffer_bytes=8 * 1024))


def fingerprint(res):
    """Counters as ints, times as exact hex floats."""
    rows = []
    for core in sorted(res.core_counters):
        c = res.core_counters[core]
        rows.append(
            (core,)
            + tuple(int(getattr(c, f)) for f in INT_COUNTERS)
            + tuple(float(getattr(c, f)).hex() for f in NS_COUNTERS)
        )
    rows.append(
        tuple(sorted((k, float(v).hex()) for k, v in res.main_finish_ns.items()))
    )
    rows.append((float(res.elapsed_ns).hex(), float(res.makespan_ns).hex()))
    return rows


@pytest.mark.parametrize("label,env", MODES, ids=[m[0] for m in MODES])
class TestOneSocketNodeBitIdentical:
    def test_measure_window(self, monkeypatch, label, env):
        _set_mode(monkeypatch, env)
        socket = tiny_socket(n_cores=4)

        ref = SocketSimulator(socket, seed=11)
        roster(ref)
        ref.warmup(5_000)
        res_ref = ref.measure(8_000)

        sim = NodeSimulator(one_socket_node(socket), seed=11)
        roster(sim)
        sim.warmup(5_000)
        res_node = sim.measure(8_000)

        assert fingerprint(res_ref) == fingerprint(res_node)

    def test_run_to_completion(self, monkeypatch, label, env):
        _set_mode(monkeypatch, env)
        socket = tiny_socket(n_cores=4)

        def finite():
            return ProbabilisticBenchmark(
                UniformDist(), 32 * 1024, n_accesses=9_000
            )

        ref = SocketSimulator(socket, seed=3)
        ref.add_thread(finite(), main=True)
        ref.add_thread(CSThr(buffer_bytes=4 * 1024))
        res_ref = ref.run_to_completion()

        sim = NodeSimulator(one_socket_node(socket), seed=3)
        sim.add_thread(finite(), main=True)
        sim.add_thread(CSThr(buffer_bytes=4 * 1024))
        res_node = sim.run_to_completion()

        assert fingerprint(res_ref) == fingerprint(res_node)

    def test_no_remote_traffic_on_one_socket(self, monkeypatch, label, env):
        _set_mode(monkeypatch, env)
        sim = NodeSimulator(one_socket_node(tiny_socket(4)), seed=5)
        roster(sim)
        sim.warmup(3_000)
        res = sim.measure(5_000)
        assert res.xlink_fill_bytes == 0
        assert res.xlink_busy_ns == 0.0
        for c in res.core_counters.values():
            assert c.remote_accesses == 0
            assert c.remote_fills == 0
            assert c.remote_ns == 0.0


def test_per_socket_breakdown_matches_aggregate_one_socket(monkeypatch):
    monkeypatch.delenv("REPRO_SCHED", raising=False)
    sim = NodeSimulator(one_socket_node(tiny_socket(4)), seed=2)
    roster(sim)
    sim.warmup(3_000)
    res = sim.measure(5_000)
    assert len(res.per_socket) == 1
    sc = res.per_socket[0]
    assert sc.link_fill_bytes == res.socket.link_fill_bytes
    assert sc.link_busy_ns == pytest.approx(res.socket.link_busy_ns)
