"""MeasureResult accessors and reporting."""

import pytest

from repro.engine.results import MeasureResult
from repro.mem import CoreCounters, SocketCounters


def make_result():
    cores = {
        0: CoreCounters(
            accesses=1000, l1_hits=500, l2_hits=200, l3_hits=200,
            l3_misses=100, prefetch_fills=50, elapsed_ns=10_000.0,
        ),
        1: CoreCounters(accesses=0),
    }
    socket = SocketCounters(
        cores=list(cores.values()),
        link_fill_bytes=150 * 64,
        link_busy_ns=500.0,
        elapsed_ns=10_000.0,
    )
    return MeasureResult(
        elapsed_ns=10_000.0,
        makespan_ns=9_000.0,
        core_counters=cores,
        socket=socket,
        main_cores=[0],
        main_finish_ns={0: 9_000.0},
        line_bytes=64,
    )


class TestAccessors:
    def test_miss_rate(self):
        r = make_result()
        assert r.l3_miss_rate(0) == pytest.approx(100 / 300)

    def test_eq1_bandwidth_includes_prefetch_fills(self):
        r = make_result()
        expected = (100 + 50) * 64 / (10_000e-9)
        assert r.bandwidth_Bps(0) == pytest.approx(expected)

    def test_bandwidth_zero_for_idle_core(self):
        assert make_result().bandwidth_Bps(1) == 0.0

    def test_total_bandwidth(self):
        r = make_result()
        assert r.total_bandwidth_Bps() == pytest.approx(150 * 64 / 10_000e-9)

    def test_unknown_core_raises(self):
        with pytest.raises(KeyError, match="core 7"):
            make_result().counters_of(7)


class TestSummary:
    def test_summary_mentions_main_and_rates(self):
        text = make_result().summary()
        assert "core 0 [main]" in text
        assert "GB/s" in text
        assert "makespan" in text

    def test_idle_cores_omitted(self):
        text = make_result().summary()
        assert "core 1" not in text
