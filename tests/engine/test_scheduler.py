"""Min-clock scheduler semantics."""

from typing import Iterator, List

import pytest

from repro.config import tiny_socket
from repro.engine import AccessChunk, CoreState, FastSocket, Scheduler
from repro.engine.thread import SimThread, ThreadContext
from repro.errors import SimulationError


class FixedThread(SimThread):
    """Yields `n_chunks` chunks of `size` accesses with given compute."""

    def __init__(self, n_chunks=None, size=8, ops=1, name="fixed"):
        self.n_chunks = n_chunks
        self.size = size
        self.ops = ops
        self.name = name
        self.base = 0

    def start(self, ctx: ThreadContext) -> None:
        buf = ctx.addrspace.alloc(64 * self.size * 4, elem_bytes=4)
        self.base = buf.base_line

    def chunks(self) -> Iterator[AccessChunk]:
        i = 0
        while self.n_chunks is None or i < self.n_chunks:
            lines = [self.base + (j % 4) for j in range(self.size)]
            yield AccessChunk(lines=lines, ops_per_access=self.ops)
            i += 1


def make_sched(threads_and_flags):
    socket = tiny_socket(n_cores=8)
    fast = FastSocket(socket)
    import numpy as np
    from repro.mem import AddressSpace

    space = AddressSpace(line_bytes=64)
    cores = []
    for idx, (thread, is_main) in enumerate(threads_and_flags):
        ctx = ThreadContext(
            socket=socket,
            addrspace=space,
            rng=np.random.default_rng(idx),
            core_id=idx,
        )
        thread.start(ctx)
        cores.append(
            CoreState(core_id=idx, thread=thread, gen=thread.chunks(), is_main=is_main)
        )
    return Scheduler(fast, cores)


class TestCompletion:
    def test_finite_main_runs_to_generator_end(self):
        sched = make_sched([(FixedThread(n_chunks=5, size=10), True)])
        outcome = sched.run()
        assert sched.cores[0].accesses == 50
        assert 0 in outcome.main_finish_ns

    def test_budget_stops_infinite_main(self):
        sched = make_sched([(FixedThread(n_chunks=None, size=10), True)])
        sched.run(main_access_budget=100)
        assert sched.cores[0].accesses == 100

    def test_budget_is_per_window(self):
        sched = make_sched([(FixedThread(n_chunks=None, size=10), True)])
        sched.run(main_access_budget=50)
        sched.reopen_mains()
        sched.run(main_access_budget=50)
        assert sched.cores[0].accesses == 100

    def test_interference_stops_with_mains(self):
        main = FixedThread(n_chunks=3, size=10, name="main")
        intf = FixedThread(n_chunks=None, size=10, name="intf")
        sched = make_sched([(main, True), (intf, False)])
        sched.run()
        assert sched.cores[0].done
        assert not sched.cores[1].done  # interference merely paused

    def test_multiple_mains_makespan_is_max(self):
        fastt = FixedThread(n_chunks=2, size=10, ops=1)
        slow = FixedThread(n_chunks=2, size=10, ops=500)
        sched = make_sched([(fastt, True), (slow, True)])
        outcome = sched.run()
        assert outcome.main_finish_ns[1] > outcome.main_finish_ns[0]
        assert outcome.makespan_ns == pytest.approx(
            max(outcome.main_finish_ns.values()) - outcome.start_ns
        )


class TestFairness:
    def test_min_clock_interleaves_equal_threads(self):
        """Two identical infinite threads must advance in lock step."""
        a = FixedThread(n_chunks=None, size=10)
        b = FixedThread(n_chunks=None, size=10)
        sched = make_sched([(a, True), (b, True)])
        sched.run(main_access_budget=200)
        assert abs(sched.cores[0].accesses - sched.cores[1].accesses) <= 10

    def test_slow_thread_executes_fewer_accesses(self):
        """A thread whose accesses cost 100x more must be granted fewer
        accesses per unit simulated time — that is what makes
        interference intensity emergent."""
        cheap = FixedThread(n_chunks=None, size=10, ops=1)
        costly = FixedThread(n_chunks=None, size=10, ops=200)
        sched = make_sched([(cheap, True), (costly, False)])
        sched.run(main_access_budget=2000)
        assert sched.cores[1].accesses < sched.cores[0].accesses / 10


class TestValidation:
    def test_requires_a_main(self):
        sched = make_sched([(FixedThread(n_chunks=1), False)])
        with pytest.raises(SimulationError, match="main"):
            sched.run()

    def test_rejects_duplicate_cores(self):
        socket = tiny_socket()
        fast = FastSocket(socket)
        t = FixedThread()
        cores = [
            CoreState(core_id=0, thread=t, gen=iter(()), is_main=True),
            CoreState(core_id=0, thread=t, gen=iter(()), is_main=False),
        ]
        with pytest.raises(SimulationError, match="duplicate"):
            Scheduler(fast, cores)

    def test_rejects_out_of_range_core(self):
        socket = tiny_socket(n_cores=2)
        fast = FastSocket(socket)
        t = FixedThread()
        cores = [CoreState(core_id=5, thread=t, gen=iter(()), is_main=True)]
        with pytest.raises(SimulationError, match="out of range"):
            Scheduler(fast, cores)

    def test_runaway_guard(self):
        sched = make_sched([(FixedThread(n_chunks=None, size=10), True)])
        with pytest.raises(SimulationError, match="exceeded"):
            sched.run(main_access_budget=10_000, max_total_accesses=100)

    def test_runaway_guard_fires_before_dispatch(self):
        """The safety limit is enforced *before* a chunk executes: the
        simulation never overshoots the budget, and the error names the
        core that would have crossed it."""
        sched = make_sched([(FixedThread(n_chunks=None, size=10), True)])
        with pytest.raises(SimulationError, match=r"core 0 \('fixed'\)"):
            sched.run(main_access_budget=10_000, max_total_accesses=95)
        assert sched.cores[0].accesses <= 95
