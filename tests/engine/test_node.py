"""Multi-socket NodeSimulator behaviour: placement, the remote penalty,
the inter-socket link and cross-socket interference asymmetry."""

from __future__ import annotations

import pytest

from repro.cluster import ProcessMapping
from repro.config import tiny_node, xeon20mb_cluster
from repro.engine import NodeSimulator
from repro.errors import SimulationError
from repro.workloads import BWThr, CSThr, PointerChase, UniformDist
from repro.workloads.synthetic import ProbabilisticBenchmark


def bench(n_accesses=None):
    """DRAM-heavy measured workload (working set >> tiny L3)."""
    return ProbabilisticBenchmark(UniformDist(), 64 * 1024, n_accesses=n_accesses)


class TestPlacementAndPinning:
    def test_socket_major_core_ids(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=0)
        assert sim.add_thread(bench(), socket=0, main=True) == 0
        assert sim.add_thread(CSThr(buffer_bytes=4096), socket=1) == 4
        assert sim.add_thread(CSThr(buffer_bytes=4096), socket=1) == 5
        assert sim.add_thread(CSThr(buffer_bytes=4096), socket=0) == 1
        assert sim.socket_of_core(5) == 1

    def test_socket_full_raises(self):
        sim = NodeSimulator(tiny_node(n_sockets=2, n_cores=2), seed=0)
        sim.add_thread(bench(), socket=0, main=True)
        sim.add_thread(CSThr(buffer_bytes=4096), socket=0)
        with pytest.raises(SimulationError, match="no free cores"):
            sim.add_thread(CSThr(buffer_bytes=4096), socket=0)

    def test_bad_socket_and_core_rejected(self):
        sim = NodeSimulator(tiny_node(n_sockets=2, n_cores=2), seed=0)
        with pytest.raises(SimulationError, match="socket 2 out of range"):
            sim.add_thread(bench(), socket=2)
        with pytest.raises(SimulationError, match="core 4 out of range"):
            sim.add_thread(bench(), core=4)
        with pytest.raises(SimulationError, match="home socket"):
            sim.add_thread(bench(), home_socket=7)

    def test_first_touch_homes_pages_on_running_socket(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=0)
        c0 = sim.add_thread(bench(), socket=0, main=True)
        c1 = sim.add_thread(bench(), socket=1, main=True)
        sim.measure(2_000)
        # Neither thread touches the other's pages, so all accesses are
        # local on both sockets.
        res = sim.measure(2_000)
        assert res.counters_of(c0).remote_accesses == 0
        assert res.counters_of(c1).remote_accesses == 0
        assert res.xlink_fill_bytes == 0

    def test_home_socket_override_makes_everything_remote(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=0)
        core = sim.add_thread(bench(), socket=0, main=True, home_socket=1)
        sim.warmup(2_000)
        res = sim.measure(4_000)
        c = res.counters_of(core)
        assert c.remote_accesses == c.accesses
        assert c.remote_fills > 0
        assert res.xlink_fill_bytes == c.remote_fills * node.socket.line_bytes

    def test_interleave_placement_splits_traffic(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=0, placement="interleave")
        core = sim.add_thread(bench(), socket=0, main=True)
        sim.warmup(2_000)
        res = sim.measure(4_000)
        # Pages alternate homes, so roughly half the accesses are remote.
        assert 0.3 < res.remote_fraction(core) < 0.7


class TestRemotePenalty:
    def test_remote_fills_pay_at_least_the_penalty(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=1)
        core = sim.add_thread(bench(), socket=0, main=True, home_socket=1)
        sim.warmup(2_000)
        res = sim.measure(4_000)
        c = res.counters_of(core)
        assert c.remote_fills > 0
        # remote_ns = fills * penalty + xlink queueing >= fills * penalty.
        assert c.remote_ns >= c.remote_fills * node.remote_penalty_ns
        # And it is genuine stall time, inside the core's elapsed time.
        assert c.remote_ns <= c.stall_ns <= c.elapsed_ns

    def test_remote_latency_exceeds_local(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        per_access = {}
        for tag, home in (("local", None), ("remote", 1)):
            sim = NodeSimulator(node, seed=1)
            core = sim.add_thread(
                PointerChase(8 * node.socket.l3.capacity_bytes),
                socket=0, main=True, home_socket=home,
            )
            sim.warmup(2_000)
            res = sim.measure(4_000)
            c = res.counters_of(core)
            per_access[tag] = c.elapsed_ns / c.accesses
        # DRAM-resident dependent loads: the remote run pays the QPI
        # penalty on (nearly) every fill.
        assert per_access["remote"] > per_access["local"] + 0.5 * node.remote_penalty_ns

    def test_remote_demand_occupies_home_socket_link(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=1)
        sim.add_thread(bench(), socket=0, main=True, home_socket=1)
        sim.warmup(2_000)
        res = sim.measure(4_000)
        # The requestor's socket serves the misses (caches are requestor
        # side) AND the home socket's DRAM link carries the same lines.
        assert res.per_socket[0].link_busy_ns > 0
        assert res.per_socket[1].link_busy_ns > 0


class TestInterferenceAsymmetry:
    def test_local_bwthr_hurts_more_than_remote_socket_bwthr(self):
        """The acceptance scenario: k BWThrs sharing the app's socket
        degrade it strictly more than the same BWThrs on the other
        socket (own L3, own DRAM link, locally-homed buffers)."""
        node = tiny_node(n_sockets=2, n_cores=4)

        def run(intf_socket):
            sim = NodeSimulator(node, seed=2)
            core = sim.add_thread(bench(), socket=0, main=True)
            for _ in range(2):
                sim.add_thread(
                    BWThr(buffer_bytes=8 * 1024, n_buffers=4),
                    socket=intf_socket,
                )
            sim.warmup(4_000)
            res = sim.measure(6_000)
            c = res.counters_of(core)
            return c.elapsed_ns / c.accesses

        solo_sim = NodeSimulator(node, seed=2)
        solo_core = solo_sim.add_thread(bench(), socket=0, main=True)
        solo_sim.warmup(4_000)
        solo = solo_sim.measure(6_000)
        base = solo.counters_of(solo_core).elapsed_ns / solo.counters_of(solo_core).accesses

        local = run(intf_socket=0) / base
        remote = run(intf_socket=1) / base
        assert local > remote
        assert local > 1.05  # same-socket BWThrs visibly degrade the app
        assert remote == pytest.approx(1.0, abs=0.05)  # isolation

    def test_app_spanning_both_sockets_runs(self):
        """An app with ranks on both sockets: both make progress and the
        result carries a per-socket breakdown."""
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=3)
        c0 = sim.add_thread(bench(), socket=0, main=True)
        c1 = sim.add_thread(bench(), socket=1, main=True)
        sim.warmup(2_000)
        res = sim.measure(4_000)
        assert res.counters_of(c0).accesses > 0
        assert res.counters_of(c1).accesses > 0
        assert len(res.per_socket) == 2
        assert res.per_socket[0].total_accesses > 0
        assert res.per_socket[1].total_accesses > 0


class TestProcessMappingIntegration:
    def test_add_ranks_block_placement(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        cluster = xeon20mb_cluster(n_nodes=1)
        # 4 ranks, 2 per socket -> sockets 0,0,1,1.
        mapping = ProcessMapping(cluster, n_ranks=4, procs_per_socket=2)
        sim = NodeSimulator(node, seed=4)
        cores = sim.add_ranks(mapping, lambda rank: bench())
        assert cores == [0, 1, 4, 5]
        res = sim.measure(1_000)
        assert sorted(res.main_cores) == [0, 1, 4, 5]

    def test_mapping_wider_than_node_rejected(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        cluster = xeon20mb_cluster(n_nodes=2)
        mapping = ProcessMapping(cluster, n_ranks=4, procs_per_socket=1)
        sim = NodeSimulator(node, seed=0)
        with pytest.raises(SimulationError, match="sockets"):
            sim.add_ranks(mapping, lambda rank: bench())


class TestNodeResultSummary:
    def test_summary_lists_sockets_and_xlink(self):
        node = tiny_node(n_sockets=2, n_cores=4)
        sim = NodeSimulator(node, seed=5)
        sim.add_thread(bench(), socket=0, main=True, home_socket=1)
        sim.warmup(1_000)
        res = sim.measure(2_000)
        text = res.summary()
        assert "socket 0" in text and "socket 1" in text
        assert "x-link" in text
        assert res.xlink_utilization() > 0.0
        assert res.xlink_bandwidth_Bps() > 0.0
