"""Property-based invariants of the fused simulation kernel."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PrefetchConfig, tiny_socket
from repro.engine import AccessChunk, FastSocket

SOCKET = tiny_socket(n_cores=2)
SOCKET_NOPF = replace(SOCKET, prefetch=PrefetchConfig(enabled=False))

chunk_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),               # core
        st.lists(st.integers(min_value=0, max_value=500),    # lines
                 min_size=1, max_size=64),
        st.booleans(),                                       # write
        st.integers(min_value=0, max_value=20),              # ops
    ),
    min_size=1,
    max_size=30,
)


@given(chunk_strategy)
@settings(max_examples=150, deadline=None)
def test_counters_partition_accesses(spec):
    """Every access lands in exactly one level bucket."""
    fast = FastSocket(SOCKET_NOPF)
    clocks = [0.0, 0.0]
    for core, lines, write, ops in spec:
        clocks[core] = fast.run_chunk(
            core, AccessChunk(lines=lines, is_write=write, ops_per_access=ops),
            clocks[core],
        )
    for c in fast.counters:
        assert (
            c.l1_hits + c.l2_hits + c.l3_hits + c.prefetch_hits + c.l3_misses
            == c.accesses
        )
        assert c.stall_ns >= 0.0
        assert c.elapsed_ns == pytest.approx(
            c.compute_ns + c.stall_ns + c.offsocket_ns
        )


@given(chunk_strategy)
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone_and_positive(spec):
    fast = FastSocket(SOCKET_NOPF)
    clocks = [0.0, 0.0]
    for core, lines, write, ops in spec:
        t = fast.run_chunk(
            core, AccessChunk(lines=lines, is_write=write, ops_per_access=ops),
            clocks[core],
        )
        assert t >= clocks[core]
        clocks[core] = t


@given(chunk_strategy)
@settings(max_examples=100, deadline=None)
def test_l3_occupancy_bounded_and_fill_accounting(spec):
    fast = FastSocket(SOCKET_NOPF)
    clocks = [0.0, 0.0]
    for core, lines, write, ops in spec:
        clocks[core] = fast.run_chunk(
            core, AccessChunk(lines=lines, is_write=write, ops_per_access=ops),
            clocks[core],
        )
    assert fast.l3_resident_count() <= SOCKET.l3.n_lines
    total_misses = sum(c.l3_misses for c in fast.counters)
    assert fast.arbiter.fill_bytes == total_misses * SOCKET.line_bytes


@given(chunk_strategy)
@settings(max_examples=60, deadline=None)
def test_prefetch_never_breaks_invariants(spec):
    """With the prefetcher on, fills may exceed demand misses but the
    partition and occupancy invariants still hold."""
    fast = FastSocket(SOCKET)
    clocks = [0.0, 0.0]
    for core, lines, write, ops in spec:
        clocks[core] = fast.run_chunk(
            core,
            AccessChunk(lines=lines, is_write=write, ops_per_access=ops, stream_id=core),
            clocks[core],
        )
    for c in fast.counters:
        assert (
            c.l1_hits + c.l2_hits + c.l3_hits + c.prefetch_hits + c.l3_misses
            == c.accesses
        )
    assert fast.l3_resident_count() <= SOCKET.l3.n_lines
    total_fills = sum(c.l3_misses + c.prefetch_fills for c in fast.counters)
    assert fast.arbiter.fill_bytes == total_fills * SOCKET.line_bytes
