"""Property-style check: ``BlockQueues.grow_lines`` mid-stream.

The line arena may be reallocated at any moment — between pushes,
between consumes, even while several slots hold partially-drained
blocks (that is exactly what happens when one oversized generator chunk
lands while other cores are mid-block). The test drives random
interleavings of push / consume / explicit-grow / refill against a
pure-Python model and asserts after every step that no queued chunk's
lines or metadata moved, cursors stayed consistent, and the
``generation`` counter ticked exactly when the arena was reallocated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.blockq import BlockQueues, QueueWriter


def read_chunk(q: BlockQueues, slot: int, c: int):
    """What the (C or Python) scheduler would consume for chunk ``c``."""
    off = int(q.off[slot, c])
    n = int(q.clen[slot, c])
    return (
        tuple(int(x) for x in q.lines[slot, off:off + n]),
        int(q.cwrite[slot, c]),
        int(q.cops[slot, c]),
        int(q.csid[slot, c]),
        int(q.cser[slot, c]),
        int(q.cpf[slot, c]),
        float(q.cextra[slot, c]),
    )


def check_against_model(q: BlockQueues, model):
    """Every not-yet-consumed chunk of every slot matches the model."""
    for slot, chunks in enumerate(model):
        head, count = int(q.head[slot]), int(q.count[slot])
        assert count - head == len(chunks) - head
        for c in range(head, count):
            assert read_chunk(q, slot, c) == chunks[c], (
                f"slot {slot} chunk {c} corrupted "
                f"(line_cap={q.line_cap}, generation={q.generation})"
            )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_grow_lines_mid_stream_preserves_queues(seed):
    rng = np.random.default_rng(seed)
    n_slots = int(rng.integers(1, 5))
    chunk_cap = int(rng.integers(4, 12))
    # Tiny initial arena so organic growth (push overflowing line_cap)
    # happens constantly, not just on the explicit grow op.
    q = BlockQueues(n_slots, chunk_cap=chunk_cap, line_cap=8)
    writers = [QueueWriter(q, s) for s in range(n_slots)]
    model = [[] for _ in range(n_slots)]  # per-slot list of chunk tuples

    for step in range(400):
        op = rng.choice(("push", "consume", "grow", "refill"))
        slot = int(rng.integers(n_slots))
        gen_before = q.generation
        cap_before = q.line_cap

        if op == "push":
            if len(model[slot]) >= chunk_cap:
                assert writers[slot].push([1]) is False  # full block rejected
            else:
                n = int(rng.integers(1, 40))
                lines = rng.integers(0, 1 << 40, size=n)
                meta = dict(
                    is_write=bool(rng.integers(2)),
                    ops_per_access=int(rng.integers(0, 4)),
                    stream_id=int(rng.integers(8)),
                    serialize=bool(rng.integers(2)),
                    extra_ns=float(rng.integers(100)),
                    prefetchable=bool(rng.integers(2)),
                )
                assert writers[slot].push(lines, **meta) is True
                model[slot].append((
                    tuple(int(x) for x in lines),
                    int(meta["is_write"]), meta["ops_per_access"],
                    meta["stream_id"], int(meta["serialize"]),
                    int(meta["prefetchable"]), meta["extra_ns"],
                ))
        elif op == "consume":
            if q.pending(slot):
                head = int(q.head[slot])
                assert read_chunk(q, slot, head) == model[slot][head]
                q.head[slot] = head + 1
        elif op == "grow":
            # Bounded target: growth doubles until it fits, and an
            # unbounded random walk would compound geometrically.
            target = int(rng.integers(1, 4096))
            q.grow_lines(target)
            assert q.line_cap >= target
        else:  # refill: writers are only handed over when fully drained
            if q.pending(slot) == 0:
                writers[slot].begin()
                model[slot] = []

        # Growth is observable exactly through (generation, line_cap):
        # they move together, and the arena never shrinks.
        assert (q.generation > gen_before) == (q.line_cap > cap_before)
        assert q.line_cap >= cap_before
        check_against_model(q, model)

    # The queues stay usable after all that churn: drain and refill all.
    for slot in range(n_slots):
        q.head[slot] = q.count[slot]
        writers[slot].begin()
        assert writers[slot].push(np.arange(5)) is True
        assert read_chunk(q, slot, 0)[0] == (0, 1, 2, 3, 4)


def test_grow_preserves_partially_consumed_rows():
    """Directed version: consume half a block, force a realloc via a
    neighbour's oversized push, finish consuming — bytes identical."""
    q = BlockQueues(2, chunk_cap=4, line_cap=16)
    a, b = QueueWriter(q, 0), QueueWriter(q, 1)
    chunks = [np.arange(4) + 10 * i for i in range(4)]
    for ch in chunks:
        assert a.push(ch)
    q.head[0] = 2  # half-drained when the neighbour grows the arena

    assert b.push(np.arange(64))  # 64 > 16 free lines: reallocates
    assert q.generation == 1 and q.line_cap >= 64

    for c in (2, 3):
        assert read_chunk(q, 0, c)[0] == tuple(int(x) for x in chunks[c])
    assert read_chunk(q, 1, 0)[0] == tuple(range(64))


def test_grow_lines_noop_below_capacity():
    q = BlockQueues(1, chunk_cap=4, line_cap=64)
    q.grow_lines(32)
    assert q.line_cap == 64 and q.generation == 0
