"""SocketSimulator facade: lifecycle, placement, determinism."""

import pytest

from repro.config import tiny_socket, xeon20mb
from repro.engine import SocketSimulator
from repro.errors import SimulationError
from repro.units import KiB
from repro.workloads import CSThr, ProbabilisticBenchmark, UniformDist


def make_probe(buf_kib=64):
    return ProbabilisticBenchmark(UniformDist(), buf_kib * KiB, ops_per_access=1)


class TestPlacement:
    def test_cores_assigned_in_order(self, tiny):
        sim = SocketSimulator(tiny)
        assert sim.add_thread(make_probe(), main=True) == 0
        assert sim.add_thread(CSThr(buffer_bytes=4 * KiB)) == 1

    def test_explicit_core(self, tiny):
        sim = SocketSimulator(tiny)
        assert sim.add_thread(make_probe(), core=3, main=True) == 3

    def test_duplicate_core_rejected(self, tiny):
        sim = SocketSimulator(tiny)
        sim.add_thread(make_probe(), core=1, main=True)
        with pytest.raises(SimulationError, match="occupied"):
            sim.add_thread(CSThr(buffer_bytes=4 * KiB), core=1)

    def test_out_of_range_core_rejected(self, tiny):
        sim = SocketSimulator(tiny)
        with pytest.raises(SimulationError, match="out of range"):
            sim.add_thread(make_probe(), core=99, main=True)

    def test_needs_a_main_thread(self, tiny):
        sim = SocketSimulator(tiny)
        sim.add_thread(CSThr(buffer_bytes=4 * KiB))
        with pytest.raises(SimulationError, match="main"):
            sim.measure(accesses=100)

    def test_cannot_add_after_start(self, tiny):
        sim = SocketSimulator(tiny)
        sim.add_thread(make_probe(), main=True)
        sim.measure(accesses=100)
        with pytest.raises(SimulationError, match="after the run started"):
            sim.add_thread(CSThr(buffer_bytes=4 * KiB))


class TestMeasurementFlow:
    def test_measure_reports_requested_accesses(self, tiny):
        sim = SocketSimulator(tiny)
        core = sim.add_thread(make_probe(), main=True)
        result = sim.measure(accesses=500)
        c = result.counters_of(core)
        # quantum-granular stop: within one chunk of the budget
        assert 500 <= c.accesses <= 500 + 256

    def test_warmup_discards_counters_keeps_cache(self, tiny):
        sim = SocketSimulator(tiny)
        core = sim.add_thread(make_probe(buf_kib=8), main=True)
        sim.warmup(accesses=2000)
        result = sim.measure(accesses=1000)
        c = result.counters_of(core)
        # 8 KiB buffer (128 lines) fits the 16 KiB tiny L3: after warmup
        # essentially everything hits.
        assert c.l3_miss_rate < 0.02

    def test_cold_run_misses_more_than_warm(self, tiny):
        cold = SocketSimulator(tiny, seed=1)
        core = cold.add_thread(make_probe(buf_kib=8), main=True)
        cold_rate = cold.measure(accesses=1000).l3_miss_rate(core)

        warm = SocketSimulator(tiny, seed=1)
        core = warm.add_thread(make_probe(buf_kib=8), main=True)
        warm.warmup(accesses=2000)
        warm_rate = warm.measure(accesses=1000).l3_miss_rate(core)
        assert warm_rate < cold_rate

    def test_unknown_core_lookup_raises(self, tiny):
        sim = SocketSimulator(tiny)
        sim.add_thread(make_probe(), main=True)
        result = sim.measure(accesses=200)
        with pytest.raises(KeyError):
            result.counters_of(7)

    def test_thread_on_core(self, tiny):
        sim = SocketSimulator(tiny)
        probe = make_probe()
        core = sim.add_thread(probe, main=True)
        assert sim.thread_on_core(core) is probe
        with pytest.raises(KeyError):
            sim.thread_on_core(5)


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run(seed):
            sim = SocketSimulator(xeon20mb(), seed=seed)
            core = sim.add_thread(make_probe(buf_kib=2048), main=True)
            sim.add_thread(CSThr())
            sim.warmup(accesses=3000)
            r = sim.measure(accesses=3000)
            return (r.l3_miss_rate(core), r.makespan_ns)

        assert run(42) == run(42)

    def test_different_seed_different_trace(self):
        def run(seed):
            sim = SocketSimulator(xeon20mb(), seed=seed)
            core = sim.add_thread(make_probe(buf_kib=2048), main=True)
            sim.warmup(accesses=2000)
            return sim.measure(accesses=2000).l3_miss_rate(core)

        assert run(1) != run(2)
