"""Sweep-batch equivalence: ``backend="batched"`` vs per-point macro.

The sweep-batched engine (``repro.engine.sweeppath``) runs every
interference point of a campaign inside one kernel session, crossing
into C once per scheduling round for *all* points instead of once per
point. That is only allowed to be a performance change: for every point
the batched path must reproduce the per-point macro path **bit for
bit** — every event counter equal as an integer, every clock, finish
time and derived observable equal as a float (hex-exact, not approx).

The suite closes that contract on the Xeon20MB socket across the
kernel/scheduler matrix (macro-C, macro-py via ``REPRO_NO_CSCHED``, the
list-based reference kernel via ``REPRO_KERNEL=lists``; CI re-runs the
whole file under ``REPRO_NO_CKERNEL=1``), then covers the orchestration
seams: caching still hits per point, a journaled campaign resumes
mid-batch by serving recorded points and batching only the rest, the
``REPRO_SWEEP`` knob and explicit ``backend=`` argument validate their
inputs, and unsupported scheduler modes degrade to the per-point path
rather than erroring.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import pytest

from repro.config import xeon20mb
from repro.core import (
    ActiveMeasurement,
    CampaignJournal,
    PointRunner,
    ResultCache,
)
from repro.core.sweep import BW, CS
from repro.engine import resolve_sweep_mode, sweep_supported
from repro.errors import ConfigError, MeasurementError
from repro.units import MiB
from repro.workloads import ProbabilisticBenchmark, UniformDist

#: Every env knob that changes which engine services a sweep. Cleared
#: before each test so the ambient CI environment (e.g. the
#: ``REPRO_NO_CKERNEL=1`` leg) is the only thing that varies.
ENGINE_ENV_VARS = (
    "REPRO_KERNEL",
    "REPRO_SCHED",
    "REPRO_NO_CSCHED",
    "REPRO_SCHED_BLOCK",
    "REPRO_SWEEP",
)

#: (label, env overrides) — the in-process corner of the mode matrix.
#: ``REPRO_NO_CKERNEL`` cannot be toggled mid-process (the C library is
#: loaded once and cached), so the no-C column runs as a separate CI
#: leg over this same file.
MODES = (
    ("macro-c", {}),
    ("macro-py", {"REPRO_NO_CSCHED": "1"}),
    ("lists", {"REPRO_KERNEL": "lists"}),
)


@pytest.fixture(autouse=True)
def _clean_engine_env(monkeypatch):
    for var in ENGINE_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


def _set_mode(monkeypatch, env):
    for var, val in env.items():
        monkeypatch.setenv(var, val)


def make_am(xeon, **kw):
    defaults = dict(
        warmup_accesses=1_500,
        measure_accesses=2_000,
        seed=321,
        workload_spec="sweep-eq-uniform-4M",
        runner=PointRunner(backend="serial", retries=0),
    )
    defaults.update(kw)
    return ActiveMeasurement(
        xeon, lambda: ProbabilisticBenchmark(UniformDist(), 4 * MiB), **defaults
    )


def _hexify(value):
    """Floats to hex (exact), containers recursively, ints untouched."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return sorted((k, _hexify(v)) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return [_hexify(v) for v in value]
    return value


def fingerprint(point) -> Tuple:
    """Bit-exact snapshot of a point: derived observables *and* the raw
    ``MeasureResult`` payload (all counters, clocks, finish times)."""
    return (
        point.kind,
        point.k,
        tuple(point.main_cores),
        float(point.makespan_ns).hex(),
        _hexify(point.l3_miss_rates),
        _hexify(point.bandwidths_Bps),
        float(point.time_per_access_ns).hex(),
        _hexify(dataclasses.asdict(point.require_result())),
    )


def fingerprints(points) -> List[Tuple]:
    return [fingerprint(p) for p in points]


KS = list(range(6))  # >= 6-point sweep per the acceptance gate


class TestBatchedEquivalence:
    @pytest.mark.parametrize("label,env", MODES, ids=[m[0] for m in MODES])
    def test_capacity_sweep_bit_identical(self, xeon, monkeypatch, label, env):
        _set_mode(monkeypatch, env)
        am = make_am(xeon)
        ref = am.sweep(CS, KS, backend="per-point")
        got = am.sweep(CS, KS, backend="batched")
        assert fingerprints(got.points) == fingerprints(ref.points)

    def test_bandwidth_sweep_bit_identical(self, xeon):
        am = make_am(xeon)
        ref = am.sweep(BW, [0, 1, 2, 3], backend="per-point")
        got = am.sweep(BW, [0, 1, 2, 3], backend="batched")
        assert fingerprints(got.points) == fingerprints(ref.points)

    def test_mixed_kind_batch(self, xeon):
        """One batch may mix CSThr and BWThr points; order is preserved."""
        am = make_am(xeon)
        specs = [(CS, 2, 0), (BW, 1, 0), (CS, 0, 0), (BW, 3, 0)]
        ref = [am.run_point(kind, k, trial=t) for kind, k, t in specs]
        got = am.run_point_batch(specs)
        assert fingerprints(got) == fingerprints(ref)
        assert [(p.kind, p.k) for p in got] == [(s[0], s[1]) for s in specs]

    def test_batched_is_one_runner_batch(self, xeon):
        am = make_am(xeon)
        am.sweep(CS, KS, backend="batched")
        tele = am.runner.last_telemetry
        assert tele is not None
        assert tele.batches == 1
        assert tele.points_done == len(KS)


class TestOrchestrationSeams:
    def test_cache_hits_per_point(self, xeon, tmp_path):
        """A batched campaign caches per point: a rerun (even per-point)
        serves every point from cache without touching the engine."""
        runner = PointRunner(
            backend="serial", retries=0, cache=ResultCache(tmp_path / "c")
        )
        am = make_am(xeon, runner=runner)
        first = am.sweep(CS, KS, backend="batched")
        assert runner.last_telemetry.cache_hits == 0
        assert runner.last_telemetry.batches == 1

        again = am.sweep(CS, KS, backend="batched")
        assert runner.last_telemetry.cache_hits == len(KS)
        assert runner.last_telemetry.batches == 0
        assert fingerprints(again.points) == fingerprints(first.points)

        per_point = am.sweep(CS, KS, backend="per-point")
        assert runner.last_telemetry.cache_hits == len(KS)
        assert fingerprints(per_point.points) == fingerprints(first.points)

    def test_journal_resume_mid_batch(self, xeon, tmp_path):
        """Resuming a journaled campaign mid-batch serves the recorded
        points and batches only the remainder — results unchanged."""
        am_ref = make_am(xeon)
        ref = am_ref.sweep(CS, KS, backend="per-point")

        path = tmp_path / "journal.jsonl"
        first = make_am(
            xeon,
            runner=PointRunner(
                backend="serial", retries=0, journal=CampaignJournal(path)
            ),
        )
        first.sweep(CS, KS[:2], backend="batched")  # "crashed" after 2 points

        resumed = make_am(
            xeon,
            runner=PointRunner(
                backend="serial", retries=0, journal=CampaignJournal(path)
            ),
        )
        got = resumed.sweep(CS, KS, backend="batched")
        tele = resumed.runner.last_telemetry
        assert tele.journal_hits == 2
        assert tele.batches == 1  # the four remaining points, one batch
        assert tele.points_done == len(KS)
        assert fingerprints(got.points) == fingerprints(ref.points)

    def test_unsupported_sched_mode_falls_back(self, xeon, monkeypatch):
        """Under the chunk-at-a-time scheduler there is no batch kernel;
        ``backend="batched"`` degrades to per-point, same results."""
        monkeypatch.setenv("REPRO_SCHED", "chunk")
        assert not sweep_supported()
        am = make_am(xeon)
        ref = am.sweep(CS, [0, 1, 2], backend="per-point")
        got = am.sweep(CS, [0, 1, 2], backend="batched")
        assert fingerprints(got.points) == fingerprints(ref.points)


class TestSweepKnob:
    def test_default_is_per_point(self):
        assert resolve_sweep_mode() == "per-point"

    def test_env_selects_batched(self, xeon, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP", "batched")
        assert resolve_sweep_mode() == "batched"
        am = make_am(xeon)
        am.sweep(CS, [0, 1, 2])  # backend=None -> env decides
        assert am.runner.last_telemetry.batches == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP", "vectorised")
        with pytest.raises(ConfigError, match="REPRO_SWEEP"):
            resolve_sweep_mode()

    def test_invalid_backend_argument_rejected(self, xeon):
        am = make_am(xeon)
        with pytest.raises(MeasurementError, match="unknown sweep backend"):
            am.sweep(CS, [0, 1], backend="bogus")
