"""Scheduler-mode equivalence: macro-stepped vs chunk-at-a-time.

The macro-stepped engine (C ``sched_step`` and its pure-Python mirror)
must be *bit-identical* to the reference chunk-at-a-time scheduler:
every event counter equal as integers, every clock and finish time equal
as floats (hex-exact, not approx). This is the contract that lets the
fast path be the default — any simulation result is reproducible under
``REPRO_SCHED=chunk``.

The suite drives all six workloads (the two paper interference threads,
the probabilistic benchmark, STREAM triad, hot/cold probe and bubble)
through warmup + measure windows on both the array and list kernels,
then covers the macro-stepping edge cases: budget exhaustion mid-block,
generator exhaustion mid-block, window reopen, runaway guards and the
roster tie-break invariant.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np
import pytest

from repro.config import tiny_socket, xeon20mb
from repro.engine import (
    AccessChunk,
    CoreState,
    FastSocket,
    Scheduler,
    make_socket_kernel,
)
from repro.engine.thread import SimThread, ThreadContext
from repro.errors import ConfigError, SimulationError
from repro.mem import AddressSpace
from repro.workloads import BWThr, BubbleProbe, CSThr, HotColdProbe, StreamTriad
from repro.workloads.distributions import UniformDist
from repro.workloads.synthetic import ProbabilisticBenchmark

INT_COUNTERS = (
    "accesses", "l1_hits", "l2_hits", "l3_hits", "prefetch_hits",
    "l3_misses", "prefetch_fills", "writebacks", "compute_ops",
)
NS_COUNTERS = ("compute_ns", "offsocket_ns", "stall_ns", "elapsed_ns")

#: (mode label, env overrides). ``macro-py`` forces the pure-Python
#: macro driver even when the C scheduler is compiled, closing the
#: three-way triangle chunk == macro-C == macro-py in one process.
MODES = (
    ("chunk", {"REPRO_SCHED": "chunk"}),
    ("macro", {"REPRO_SCHED": "macro"}),
    ("macro-py", {"REPRO_SCHED": "macro", "REPRO_NO_CSCHED": "1"}),
)

SCHED_ENV_VARS = ("REPRO_SCHED", "REPRO_NO_CSCHED", "REPRO_SCHED_BLOCK")


def _set_mode(monkeypatch, env):
    for var in SCHED_ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    for var, val in env.items():
        monkeypatch.setenv(var, val)


def build_sched(threads_and_flags, socket=None, kernel="arrays", seed0=7):
    """Fresh kernel + scheduler over freshly started threads."""
    if socket is None:
        socket = tiny_socket(n_cores=8)
    if kernel == "lists":
        fast = FastSocket(socket)
    else:
        fast = make_socket_kernel(socket)
    space = AddressSpace(line_bytes=socket.line_bytes)
    cores = []
    for idx, (thread, is_main) in enumerate(threads_and_flags):
        ctx = ThreadContext(
            socket=socket,
            addrspace=space,
            rng=np.random.default_rng(seed0 + idx),
            core_id=idx,
        )
        thread.start(ctx)
        cores.append(
            CoreState(core_id=idx, thread=thread, gen=thread.chunks(), is_main=is_main)
        )
    return Scheduler(fast, cores)


def fingerprint(sched, outcomes) -> Tuple:
    """Hex-exact snapshot of every per-core and per-window observable."""
    rows: List[Tuple] = []
    for cs in sched.cores:
        rows.append((
            cs.core_id, cs.accesses, cs.done, float(cs.clock_ns).hex(),
            None if cs.finish_ns is None else float(cs.finish_ns).hex(),
        ))
    for o in outcomes:
        rows.append((
            sorted((k, float(v).hex()) for k, v in o.main_finish_ns.items()),
            float(o.start_ns).hex(), float(o.end_ns).hex(), o.total_accesses,
        ))
    for cid, c in enumerate(sched.fast.counters):
        rows.append(
            tuple(getattr(c, f) for f in INT_COUNTERS)
            + tuple(float(getattr(c, f)).hex() for f in NS_COUNTERS)
        )
    return tuple(rows)


class FixedThread(SimThread):
    """Yields ``n_chunks`` chunks of ``size`` accesses (generator path)."""

    def __init__(self, n_chunks=None, size=8, ops=1, name="fixed"):
        self.n_chunks = n_chunks
        self.size = size
        self.ops = ops
        self.name = name
        self.base = 0

    def start(self, ctx: ThreadContext) -> None:
        buf = ctx.addrspace.alloc(64 * self.size * 4, elem_bytes=4)
        self.base = buf.base_line

    def chunks(self) -> Iterator[AccessChunk]:
        i = 0
        while self.n_chunks is None or i < self.n_chunks:
            lines = [self.base + (j % 4) for j in range(self.size)]
            yield AccessChunk(lines=lines, ops_per_access=self.ops)
            i += 1


def all_workloads():
    """All six workloads: four mains + the two paper interference threads."""
    return [
        (ProbabilisticBenchmark(UniformDist(), 4 * 1024 * 1024), True),
        (HotColdProbe(2 * 1024 * 1024, hot_fraction=0.9), True),
        (StreamTriad(array_bytes=8 * 1024 * 1024), True),
        (BubbleProbe(0.75), True),
        (CSThr(buffer_bytes=2 * 1024 * 1024), False),
        (BWThr(n_buffers=7), False),
    ]


def run_windows(sched, budgets):
    outcomes = [sched.run(main_access_budget=budgets[0])]
    for b in budgets[1:]:
        sched.reopen_mains()
        outcomes.append(sched.run(main_access_budget=b))
    return outcomes


class TestModeEquivalence:
    @pytest.mark.parametrize("kernel", ["arrays", "lists"])
    def test_all_six_workloads_bit_identical(self, monkeypatch, kernel):
        """chunk == macro-C == macro-py over two windows, both kernels."""
        prints = {}
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched(all_workloads(), socket=xeon20mb(), kernel=kernel)
            outcomes = run_windows(sched, [6_000, 8_000])
            prints[label] = fingerprint(sched, outcomes)
        assert prints["macro"] == prints["chunk"]
        assert prints["macro-py"] == prints["chunk"]

    def test_exotic_shapes_bit_identical(self, monkeypatch):
        """Pure-hot probe (uniform-block path), zero-pressure bubble (no
        stream chunks) and a finite fill_block main that exhausts
        mid-window all agree across modes."""
        def shape():
            return [
                (HotColdProbe(1024 * 1024, hot_fraction=1.0), True),
                (BubbleProbe(0.0), True),
                (ProbabilisticBenchmark(
                    UniformDist(), 1024 * 1024, n_accesses=3_777), True),
                (CSThr(buffer_bytes=1024 * 1024), False),
            ]

        prints = {}
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched(shape(), socket=xeon20mb())
            outcomes = run_windows(sched, [2_500, 3_000])
            prints[label] = fingerprint(sched, outcomes)
        assert prints["macro"] == prints["chunk"]
        assert prints["macro-py"] == prints["chunk"]

    def test_generator_fallback_bit_identical(self, monkeypatch):
        """Threads without fill_block ride the generator refill path and
        still match chunk-at-a-time exactly."""
        def shape():
            return [
                (FixedThread(n_chunks=None, size=10, ops=3, name="m"), True),
                (FixedThread(n_chunks=None, size=7, ops=1, name="i"), False),
            ]

        prints = {}
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched(shape())
            outcomes = run_windows(sched, [500, 700])
            prints[label] = fingerprint(sched, outcomes)
        assert prints["macro"] == prints["chunk"]
        assert prints["macro-py"] == prints["chunk"]

    def test_small_block_size_bit_identical(self, monkeypatch):
        """REPRO_SCHED_BLOCK is clamped so multi-chunk cycles always fit;
        even the smallest block produces identical results."""
        _set_mode(monkeypatch, {"REPRO_SCHED": "chunk"})
        ref_sched = build_sched(all_workloads(), socket=xeon20mb())
        ref = fingerprint(ref_sched, run_windows(ref_sched, [3_000]))
        _set_mode(
            monkeypatch, {"REPRO_SCHED": "macro", "REPRO_SCHED_BLOCK": "1"}
        )
        small = build_sched(all_workloads(), socket=xeon20mb())
        assert fingerprint(small, run_windows(small, [3_000])) == ref


class TestMacroEdgeCases:
    def test_budget_exhausts_mid_block(self, monkeypatch):
        """A window budget far smaller than one staged block stops at the
        same access count as the chunk path (chunk granularity)."""
        counts = {}
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched([(FixedThread(n_chunks=None, size=10), True)])
            sched.run(main_access_budget=95)
            counts[label] = sched.cores[0].accesses
        assert counts["chunk"] == 100  # 10 chunks of 10; >= budget after 10th
        assert counts["macro"] == counts["chunk"]
        assert counts["macro-py"] == counts["chunk"]

    def test_generator_exhausts_mid_block(self, monkeypatch):
        """A finite generator shorter than one block finishes with the
        exact chunk-path finish time."""
        prints = {}
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched([(FixedThread(n_chunks=10, size=9), True)])
            outcomes = run_windows(sched, [None])
            assert sched.cores[0].accesses == 90
            prints[label] = fingerprint(sched, outcomes)
        assert prints["macro"] == prints["chunk"]
        assert prints["macro-py"] == prints["chunk"]

    def test_reopen_after_exhaustion_completes_immediately(self, monkeypatch):
        """A main whose generator ran dry stays finished when the window
        reopens — same as calling next() on a spent generator."""
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched([
                (FixedThread(n_chunks=5, size=10, name="spent"), True),
                (FixedThread(n_chunks=None, size=10, name="intf"), False),
            ])
            sched.run()
            first = sched.cores[0].accesses
            sched.reopen_mains()
            outcome = sched.run(main_access_budget=1_000)
            assert sched.cores[0].accesses == first == 50, label
            assert sched.cores[0].done, label
            assert 0 in outcome.main_finish_ns, label

    def test_interference_runaway_names_offending_core(self, monkeypatch):
        """The pre-dispatch safety limit fires before the crossing chunk
        executes and the error names the interference core, in every
        scheduler mode."""
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            # Main's first chunk costs ~5000 ops, so after the t=0
            # tie-break the interference core (100-access chunks) is
            # always least-advanced and crosses max_total first.
            sched = build_sched([
                (FixedThread(n_chunks=None, size=1, ops=5000, name="main"), True),
                (FixedThread(n_chunks=None, size=100, ops=1, name="intf"), False),
            ])
            with pytest.raises(SimulationError, match=r"core 1 \('intf'\)"):
                sched.run(main_access_budget=10_000, max_total_accesses=250)
            assert sched.fast.counters[1].accesses <= 250, label

    def test_runaway_total_never_overshoots(self, monkeypatch):
        for label, env in MODES:
            _set_mode(monkeypatch, env)
            sched = build_sched([(FixedThread(n_chunks=None, size=10), True)])
            with pytest.raises(SimulationError, match="exceeded"):
                sched.run(main_access_budget=10_000, max_total_accesses=95)
            assert sched.cores[0].accesses <= 95, label


class TestModePinning:
    def test_mode_is_pinned_across_windows(self, monkeypatch):
        _set_mode(monkeypatch, {"REPRO_SCHED": "macro"})
        sched = build_sched([(FixedThread(n_chunks=None, size=10), True)])
        sched.run(main_access_budget=100)
        sched.reopen_mains()
        monkeypatch.setenv("REPRO_SCHED", "chunk")
        with pytest.raises(SimulationError, match="pinned"):
            sched.run(main_access_budget=100)

    def test_unknown_mode_rejected(self, monkeypatch):
        # Env-knob validation errors are ConfigError everywhere
        # (repro.engine.envconf), not SimulationError.
        _set_mode(monkeypatch, {"REPRO_SCHED": "warp"})
        sched = build_sched([(FixedThread(n_chunks=1), True)])
        with pytest.raises(ConfigError, match="REPRO_SCHED"):
            sched.run()

    def test_bad_block_size_rejected(self, monkeypatch):
        for bad in ("0", "-4", "lots"):
            _set_mode(
                monkeypatch, {"REPRO_SCHED": "macro", "REPRO_SCHED_BLOCK": bad}
            )
            sched = build_sched([(FixedThread(n_chunks=1), True)])
            with pytest.raises(ConfigError, match="REPRO_SCHED_BLOCK"):
                sched.run()


class TestRosterTieBreak:
    def test_roster_sorted_by_core_id(self):
        socket = tiny_socket(n_cores=8)
        fast = FastSocket(socket)
        space = AddressSpace(line_bytes=socket.line_bytes)
        cores = []
        for cid in (5, 1, 3):
            t = FixedThread(n_chunks=None, size=10, name=f"t{cid}")
            t.start(ThreadContext(
                socket=socket, addrspace=space,
                rng=np.random.default_rng(cid), core_id=cid,
            ))
            cores.append(
                CoreState(core_id=cid, thread=t, gen=t.chunks(), is_main=True)
            )
        sched = Scheduler(fast, cores)
        assert [c.core_id for c in sched.cores] == [1, 3, 5]

    @pytest.mark.parametrize("env", [e for _, e in MODES],
                             ids=[l for l, _ in MODES])
    def test_construction_order_does_not_change_results(self, monkeypatch, env):
        """The t=0 tie-break goes to the lowest core id regardless of the
        order CoreStates were handed to the Scheduler."""
        _set_mode(monkeypatch, env)

        def run_order(order):
            socket = tiny_socket(n_cores=8)
            fast = FastSocket(socket)
            space = AddressSpace(line_bytes=socket.line_bytes)
            cores = {}
            for cid in sorted(order):
                t = FixedThread(n_chunks=None, size=10 + cid, name=f"t{cid}")
                t.start(ThreadContext(
                    socket=socket, addrspace=space,
                    rng=np.random.default_rng(cid), core_id=cid,
                ))
                cores[cid] = CoreState(
                    core_id=cid, thread=t, gen=t.chunks(), is_main=True
                )
            sched = Scheduler(fast, [cores[c] for c in order])
            return fingerprint(sched, run_windows(sched, [400]))

        assert run_order([2, 0, 1]) == run_order([0, 1, 2])
