"""End-to-end integration: the full Active Measurement pipeline.

Probe -> interference sweeps -> calibrations -> availability curves ->
resource-use bracketing -> alternative-machine prediction, exactly the
workflow a user of the paper's tool would run.
"""

import pytest

from repro import (
    ActiveMeasurement,
    calibrate_bandwidth,
    calibrate_capacity,
    exascale_node,
    xeon20mb,
)
from repro.core import (
    HierarchyPredictor,
    bandwidth_curve,
    capacity_curve,
    resource_use,
)
from repro.units import MiB
from repro.workloads import ProbabilisticBenchmark, UniformDist


@pytest.mark.slow
class TestFullPipeline:
    def test_probe_campaign_to_prediction(self):
        socket = xeon20mb()
        am = ActiveMeasurement(
            socket,
            lambda: ProbabilisticBenchmark(UniformDist(), 40 * MiB),
            warmup_accesses=20_000,
            measure_accesses=15_000,
            seed=5,
        )
        cs = am.capacity_sweep(ks=[0, 2, 4, 5])
        bw = am.bandwidth_sweep(ks=[0, 1, 2])

        cap_calib = calibrate_capacity(
            socket, ks=[0, 2, 4, 5], warmup_accesses=25_000, measure_accesses=15_000
        )
        bw_calib = calibrate_bandwidth(socket, saturation_ks=())

        cap_curve = capacity_curve(cs, cap_calib)
        bw_curve = bandwidth_curve(bw, bw_calib)

        # A 40 MB uniform probe is capacity-hungry: taking L3 away from it
        # must slow it down monotonically-ish.
        assert cs.slowdowns()[-1] > 1.02
        est = resource_use(cap_curve, n_processes=1, threshold=0.03)
        assert est.lower <= est.upper

        predictor = HierarchyPredictor(cap_curve, bw_curve)
        on_xeon = predictor.predict_socket(xeon20mb(scale=1))
        on_exa = predictor.predict_socket(exascale_node(scale=1))
        # The memory-starved machine must be predicted slower.
        assert on_exa.combined_slowdown >= on_xeon.combined_slowdown
        assert on_xeon.combined_slowdown == pytest.approx(1.0, abs=0.05)

    def test_insensitive_workload_predicts_no_degradation(self):
        """A probe whose working set fits far below any interference level
        should be measured as insensitive (the paper's 'not sensitive'
        branch of Fig. 1)."""
        socket = xeon20mb()
        am = ActiveMeasurement(
            socket,
            lambda: ProbabilisticBenchmark(UniformDist(), 1 * MiB),
            warmup_accesses=15_000,
            measure_accesses=10_000,
            seed=6,
        )
        cs = am.capacity_sweep(ks=[0, 1, 2])
        assert max(cs.slowdowns()) < 1.05
        assert cs.degradation_onset() is None
