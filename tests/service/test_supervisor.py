"""Supervisor: fleet restarts, lease policing, end-to-end drain."""

import pytest

from repro.errors import ServiceError
from repro.service import DONE, JobSpec, ServiceClient, Supervisor


def spec(k=1, seed=0):
    return JobSpec(app="probe", preset="tiny", kind="cs", ks=(0, k),
                   seed=seed, warmup_accesses=2_000, measure_accesses=1_000)


class FakeProc:
    def __init__(self):
        self.dead = False

    def poll(self):
        return 1 if self.dead else None


class TestFleetTending:
    def test_validation(self, tmp_path):
        with pytest.raises(ServiceError):
            Supervisor(tmp_path, n_agents=0)
        with pytest.raises(ServiceError):
            Supervisor(tmp_path, max_agent_restarts=-1)

    def test_crashed_agent_restarts_until_budget(self, tmp_path, monkeypatch):
        sup = Supervisor(tmp_path, n_agents=1, max_agent_restarts=2)
        spawned = []

        def fake_spawn(handle):
            spawned.append(handle.agent_id)
            handle.proc = FakeProc()

        monkeypatch.setattr(sup, "spawn", fake_spawn)
        sup.start()
        handle = sup.agents[0]
        for _ in range(5):  # keep dying; restarts stop at the budget
            handle.proc.dead = True
            sup._tend_fleet(work_remains=True)
        assert handle.restarts == 2
        assert len(spawned) == 3  # initial + 2 restarts

    def test_restarted_agent_gets_a_fresh_incarnation_identity(
        self, tmp_path, monkeypatch
    ):
        sup = Supervisor(tmp_path, n_agents=1)
        monkeypatch.setattr(
            sup, "spawn", lambda h: setattr(h, "proc", FakeProc())
        )
        sup.start()
        first = sup._agent_cmd(sup.agents[0])
        sup.agents[0].proc.dead = True
        sup._tend_fleet(work_remains=True)
        second = sup._agent_cmd(sup.agents[0])
        assert first != second  # "a0.0" vs "a0.1": fences never collide

    def test_exit_with_queue_drained_is_not_a_crash(self, tmp_path, monkeypatch):
        sup = Supervisor(tmp_path, n_agents=1)
        monkeypatch.setattr(
            sup, "spawn", lambda h: setattr(h, "proc", FakeProc())
        )
        sup.start()
        sup.agents[0].proc.dead = True
        sup._tend_fleet(work_remains=False)
        assert sup.agents[0].restarts == 0


class TestEndToEnd:
    def test_subprocess_fleet_drains_the_queue(self, tmp_path):
        client = ServiceClient(tmp_path)
        ids = [client.submit(spec(k, seed=k)) for k in (1, 2)]
        sup = Supervisor(tmp_path, n_agents=2, lease_s=15.0, poll_s=0.05)
        assert sup.drain(timeout_s=120.0)
        for job_id in ids:
            assert client.status(job_id).state == DONE
            assert client.result(job_id)
        stats = sup.fleet_stats()
        assert stats["alive"] == 0  # stop() reaped the fleet
