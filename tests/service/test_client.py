"""ServiceClient: result-artifact error wrapping, wait semantics."""

from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import JobSpec, ServiceClient


def spec(seed=0):
    return JobSpec(app="probe", preset="tiny", kind="cs", ks=(0, 1),
                   seed=seed, warmup_accesses=2_000,
                   measure_accesses=1_000)


@pytest.fixture
def done_job(tmp_path):
    client = ServiceClient(tmp_path)
    job_id = client.submit(spec())
    assert client.drain() == 1
    return client, job_id


class TestResultErrorWrapping:
    def test_missing_artifact_is_a_service_error_naming_the_path(
        self, done_job
    ):
        client, job_id = done_job
        path = Path(client.status(job_id).result_path)
        path.unlink()
        # A FileNotFoundError here would read like a client bug; the
        # wrapped error names the job and the path so the caller knows
        # it is service-side state to report or repair.
        with pytest.raises(ServiceError) as err:
            client.result(job_id)
        assert job_id in str(err.value)
        assert str(path) in str(err.value)
        assert "missing or unreadable" in str(err.value)

    def test_truncated_artifact_is_a_service_error_not_a_decode_error(
        self, done_job
    ):
        client, job_id = done_job
        path = Path(client.status(job_id).result_path)
        path.write_bytes(path.read_bytes()[:-25])
        with pytest.raises(ServiceError) as err:
            client.result(job_id)
        assert job_id in str(err.value)
        assert str(path) in str(err.value)
        assert "torn or corrupt" in str(err.value)

    def test_wrapped_errors_chain_the_original_cause(self, done_job):
        client, job_id = done_job
        Path(client.status(job_id).result_path).unlink()
        with pytest.raises(ServiceError) as err:
            client.result(job_id)
        assert isinstance(err.value.__cause__, OSError)

    def test_unfinished_job_has_no_result(self, tmp_path):
        client = ServiceClient(tmp_path)
        job_id = client.submit(spec())
        with pytest.raises(ServiceError, match="no result yet"):
            client.result(job_id)

    def test_intact_artifact_round_trips(self, done_job):
        client, job_id = done_job
        payload = client.result(job_id)
        assert [p["k"] for p in payload] == [0, 1]


class TestWaitBoundary:
    def test_finished_job_returns_even_at_zero_timeout(self, done_job):
        # The done-check runs before the deadline check: a job that is
        # already finished is returned, never "timed out", even at the
        # exact timeout boundary of 0 seconds remaining.
        client, job_id = done_job
        job = client.wait(job_id, timeout_s=0.0)
        assert job.state == "done"

    def test_active_job_times_out_at_the_boundary(self, tmp_path):
        client = ServiceClient(tmp_path)
        job_id = client.submit(spec())
        with pytest.raises(ServiceError, match="timed out after 0.0s"):
            client.wait(job_id, timeout_s=0.0)
