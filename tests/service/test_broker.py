"""Durable broker: lease lifecycle, fencing, scheduling, recovery."""

import json

import pytest

from repro.core.parallel import backoff_delay
from repro.errors import ServiceError, StaleLease
from repro.service import (
    DEAD,
    DEAD_DEADLINE,
    DEAD_RETRIES,
    DONE,
    LEASED,
    QUEUED,
    DurableBroker,
    JobSpec,
)


def spec(k=1, seed=0, **overrides):
    base = dict(app="probe", preset="tiny", kind="cs", ks=(0, k),
                seed=seed, warmup_accesses=2_000, measure_accesses=1_000)
    base.update(overrides)
    return JobSpec(**base)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(tmp_path, clock):
    return DurableBroker(tmp_path, lease_s=10.0, retry_budget=3,
                         clock=clock)


class TestLifecycle:
    def test_submit_lease_complete(self, broker):
        job_id = broker.submit(spec(), tenant="t1")
        job = broker.lease("a0")
        assert job.id == job_id
        assert job.state == LEASED
        assert job.attempts == 1
        broker.complete(job_id, "a0", 1, result_path="r.json",
                        telemetry={"points_done": 2})
        done = broker.job(job_id)
        assert done.state == DONE
        assert done.result_path == "r.json"
        assert done.telemetry["points_done"] == 2
        assert broker.drained()

    def test_lease_is_fifo_over_submission_order(self, broker):
        first = broker.submit(spec(1))
        second = broker.submit(spec(2))
        assert broker.lease("a0").id == first
        assert broker.lease("a1").id == second
        assert broker.lease("a2") is None

    def test_renew_extends_the_deadline(self, broker, clock):
        job_id = broker.submit(spec())
        job = broker.lease("a0")
        first_deadline = job.deadline
        clock.advance(5.0)
        new_deadline = broker.renew(job_id, "a0", 1)
        assert new_deadline == pytest.approx(first_deadline + 5.0)

    def test_ids_embed_the_spec_fingerprint(self, broker):
        job_id = broker.submit(spec())
        assert job_id.startswith("j00000-")
        assert spec().config_key().startswith(job_id.split("-", 1)[1])


class TestFencing:
    def test_stale_agent_cannot_renew_or_complete(self, broker, clock):
        job_id = broker.submit(spec())
        broker.lease("a0")
        clock.advance(11.0)  # past the 10s lease
        assert broker.requeue_expired() == [(job_id, QUEUED)]
        clock.advance(60.0)  # clear the requeue backoff
        job = broker.lease("a1")
        assert (job.agent, job.attempts) == ("a1", 2)
        with pytest.raises(StaleLease):
            broker.renew(job_id, "a0", 1)
        with pytest.raises(StaleLease):
            broker.complete(job_id, "a0", 1)
        # The rightful holder is unaffected.
        broker.complete(job_id, "a1", 2)
        assert broker.job(job_id).state == DONE

    def test_double_complete_is_fenced(self, broker):
        job_id = broker.submit(spec())
        broker.lease("a0")
        broker.complete(job_id, "a0", 1)
        with pytest.raises(StaleLease):
            broker.complete(job_id, "a0", 1)

    def test_unknown_job_raises(self, broker):
        with pytest.raises(ServiceError, match="unknown job"):
            broker.renew("j99999-deadbeef", "a0", 1)


class TestRequeueAndDeadLetter:
    def test_expired_lease_requeues_with_deterministic_backoff(
        self, broker, clock
    ):
        job_id = broker.submit(spec())
        broker.lease("a0")
        clock.advance(11.0)
        broker.requeue_expired()
        job = broker.job(job_id)
        assert job.state == QUEUED
        assert job.failures == 1
        expected = backoff_delay(0, job_id, 0, 0.25, 30.0)
        assert job.not_before == pytest.approx(clock.t + expected)
        # Not leasable until the backoff passes.
        assert broker.lease("a1") is None
        clock.advance(expected + 0.01)
        assert broker.lease("a1").id == job_id

    def test_reported_failure_requeues_with_the_error(self, broker, clock):
        job_id = broker.submit(spec())
        broker.lease("a0")
        assert broker.fail(job_id, "a0", 1, "boom") == QUEUED
        job = broker.job(job_id)
        assert job.state == QUEUED
        assert "boom" in job.errors[-1]

    def test_poison_job_routes_to_dead_letter(self, broker, clock):
        job_id = broker.submit(spec())
        for _ in range(2):
            broker.lease("a0")
            clock.advance(11.0)
            broker.requeue_expired()
            clock.advance(60.0)
        broker.lease("a0")
        clock.advance(11.0)
        assert broker.requeue_expired() == [(job_id, DEAD)]
        job = broker.job(job_id)
        assert job.state == DEAD
        assert not job.active
        assert broker.dead_letter()[0].id == job_id
        assert broker.drained()  # dead jobs do not block the drain
        assert broker.lease("a1") is None

    def test_completion_resets_the_poison_counter(self, broker, clock):
        job_id = broker.submit(spec())
        broker.lease("a0")
        broker.fail(job_id, "a0", 1, "transient")
        clock.advance(60.0)
        job = broker.lease("a1")
        broker.complete(job_id, "a1", job.attempts)
        assert broker.job(job_id).failures == 0


class TestDurability:
    def test_state_survives_reopen(self, tmp_path, clock):
        first = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = first.submit(spec(), tenant="t1")
        first.lease("a0")
        # A brand-new instance replays the log to the same state.
        second = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job = second.job(job_id)
        assert job.state == LEASED
        assert job.agent == "a0"
        assert job.tenant == "t1"
        assert job.spec == spec()

    def test_two_instances_see_each_others_writes(self, tmp_path, clock):
        a = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        b = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = a.submit(spec())
        job = b.lease("b0")  # b syncs and leases a's submission
        assert job.id == job_id
        assert a.job(job_id).state == LEASED  # a syncs b's lease

    def test_torn_trailing_line_is_repaired(self, tmp_path, clock):
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec())
        broker.submit(spec(2))
        # Simulate a writer killed mid-append: chop the final line.
        log = tmp_path / "queue.jsonl"
        log.write_bytes(log.read_bytes()[:-10])
        fresh = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        assert fresh.repaired_lines == 1
        # The torn submit never became durable; the intact one survived.
        assert [j.id for j in fresh.jobs()] == [job_id]
        # And the log is appendable again: the next event lands intact.
        fresh.lease("a0")
        lines = log.read_bytes().splitlines()
        assert json.loads(lines[-1])["event"] == "lease"

    def test_lease_grants_survive_crash_of_the_broker_process(
        self, tmp_path, clock
    ):
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec())
        broker.lease("a0")
        clock.advance(11.0)
        # "Crash": drop the instance; the supervisor's fresh broker
        # still sees the expired lease and requeues it.
        fresh = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        assert fresh.requeue_expired() == [(job_id, QUEUED)]


class TestScheduling:
    def test_higher_priority_class_is_served_first(self, broker):
        low = broker.submit(spec(seed=0, priority=0))
        high = broker.submit(spec(seed=1, priority=5))
        mid = broker.submit(spec(seed=2, priority=2))
        order = [broker.lease(f"a{i}").id for i in range(3)]
        assert order == [high, mid, low]

    def test_edf_within_a_priority_class(self, broker):
        loose = broker.submit(spec(seed=0, deadline_s=100.0))
        tight = broker.submit(spec(seed=1, deadline_s=50.0))
        never = broker.submit(spec(seed=2))  # no deadline: sorts last
        order = [broker.lease(f"a{i}").id for i in range(3)]
        assert order == [tight, loose, never]

    def test_equal_priority_ties_break_fifo(self, broker):
        first = broker.submit(spec(seed=0, priority=3))
        second = broker.submit(spec(seed=1, priority=3))
        assert broker.lease("a0").id == first
        assert broker.lease("a1").id == second

    def test_priority_trumps_deadline(self, broker):
        # An urgent deadline in a lower class never outranks a higher
        # class: priority is the coarse knob, EDF only orders within.
        deadlined = broker.submit(spec(seed=0, priority=0, deadline_s=1.0))
        high = broker.submit(spec(seed=1, priority=1))
        assert broker.lease("a0").id == high
        assert broker.lease("a1").id == deadlined

    def test_deadline_in_the_past_is_rejected_at_submit(self):
        # deadline_s is relative-to-now, so "already expired at submit"
        # is exactly a non-positive value — refused at spec validation.
        with pytest.raises(ServiceError, match="deadline_s must be positive"):
            spec(deadline_s=0.0)
        with pytest.raises(ServiceError, match="deadline_s must be positive"):
            spec(deadline_s=-5.0)

    def test_expired_deadline_dead_letters_with_distinct_reason(
        self, broker, clock
    ):
        doomed = broker.submit(spec(seed=0, deadline_s=5.0))
        healthy = broker.submit(spec(seed=1))
        clock.advance(6.0)
        # The expired job is never granted; the healthy one is.
        assert broker.lease("a0").id == healthy
        dead = broker.job(doomed)
        assert dead.state == DEAD
        assert dead.dead_reason == DEAD_DEADLINE
        assert dead.dead_reason != DEAD_RETRIES
        assert "deadline expired" in dead.errors[-1]
        assert broker.dead_letter()[0].id == doomed

    def test_supervisor_sweep_also_expires_deadlines(self, broker, clock):
        doomed = broker.submit(spec(deadline_s=5.0))
        clock.advance(6.0)
        assert broker.requeue_expired() == [(doomed, DEAD)]
        assert broker.job(doomed).dead_reason == DEAD_DEADLINE

    def test_running_jobs_are_not_deadline_expired(self, broker, clock):
        # Expiry applies to QUEUED jobs only: a leased job keeps running
        # and its (slightly late) completion is still accepted.
        job_id = broker.submit(spec(deadline_s=5.0))
        job = broker.lease("a0")
        clock.advance(6.0)  # past the completion deadline, not the lease
        assert broker.requeue_expired() == []
        broker.complete(job_id, "a0", job.attempts)
        assert broker.job(job_id).state == DONE

    def test_backoff_gates_priority(self, broker, clock):
        # A high-priority job inside its requeue backoff window is not
        # eligible, so a lower-priority job is granted; once the window
        # passes the high-priority job outranks the queue again.
        high = broker.submit(spec(seed=0, priority=5))
        low = broker.submit(spec(seed=1, priority=0))
        low2 = broker.submit(spec(seed=2, priority=0))
        assert broker.lease("a0").id == high
        broker.fail(high, "a0", 1, "transient")
        delay = backoff_delay(0, high, 0, 0.25, 30.0)
        assert broker.lease("a1").id == low  # high is gated by backoff
        clock.advance(delay + 0.01)
        assert broker.lease("a2").id == high  # eligibility restored
        assert broker.lease("a3").id == low2

    def test_mixed_batch_drains_in_priority_then_edf_order(
        self, broker, clock
    ):
        submitted = {
            "p0_late": broker.submit(spec(seed=0, priority=0,
                                          deadline_s=500.0)),
            "p2_none": broker.submit(spec(seed=1, priority=2)),
            "p2_tight": broker.submit(spec(seed=2, priority=2,
                                           deadline_s=60.0)),
            "p0_fifo": broker.submit(spec(seed=3, priority=0)),
            "p2_loose": broker.submit(spec(seed=4, priority=2,
                                           deadline_s=300.0)),
        }
        drained = []
        while True:
            job = broker.lease("a0")
            if job is None:
                break
            broker.complete(job.id, "a0", job.attempts)
            drained.append(job.id)
        assert drained == [submitted[name] for name in (
            "p2_tight", "p2_loose", "p2_none",  # class 2, EDF inside
            "p0_late", "p0_fifo",               # class 0, EDF inside
        )]
        assert broker.drained()

    def test_default_knobs_degenerate_to_fifo(self, broker):
        # No priorities, no deadlines: identical to the pre-scheduling
        # broker, byte-for-byte submission order.
        ids = [broker.submit(spec(seed=s)) for s in range(4)]
        assert [broker.lease(f"a{i}").id for i in range(4)] == ids


class TestTraceIds:
    def test_submit_mints_a_trace_id(self, broker):
        job_id = broker.submit(spec())
        trace = broker.job(job_id).trace_id
        assert len(trace) == 16
        assert all(c in "0123456789abcdef" for c in trace)

    def test_caller_supplied_trace_id_is_kept(self, broker):
        job_id = broker.submit(spec(), trace_id="cafecafecafecafe")
        assert broker.job(job_id).trace_id == "cafecafecafecafe"

    def test_trace_id_rides_every_event(self, broker, tmp_path, clock):
        job_id = broker.submit(spec(), trace_id="feedfeedfeedfeed")
        job = broker.lease("a0")
        broker.renew(job_id, "a0", job.attempts)
        broker.complete(job_id, "a0", job.attempts,
                        result_path="r.json")
        events = [json.loads(line) for line in
                  (tmp_path / "queue.jsonl").read_text().splitlines()]
        stamped = [e for e in events if e["event"] != "config"]
        assert [e["event"] for e in stamped] == [
            "submit", "lease", "renew", "complete",
        ]
        assert all(e["trace"] == "feedfeedfeedfeed" for e in stamped)

    def test_trace_id_survives_replay(self, tmp_path, clock):
        first = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = first.submit(spec(), trace_id="beefbeefbeefbeef")
        second = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        assert second.job(job_id).trace_id == "beefbeefbeefbeef"


class TestStateHistory:
    def test_history_records_every_transition_but_not_renews(
        self, broker, clock
    ):
        job_id = broker.submit(spec())
        job = broker.lease("a0")
        broker.renew(job_id, "a0", job.attempts)
        broker.fail(job_id, "a0", job.attempts, "boom")
        clock.advance(60.0)
        job = broker.lease("a1")
        broker.complete(job_id, "a1", job.attempts)
        events = [h["event"] for h in broker.job(job_id).history]
        assert events == ["submit", "lease", "requeue", "lease",
                          "complete"]
        assert "renew" not in events

    def test_history_is_bounded(self, broker, clock):
        from repro.service.broker import HISTORY_LIMIT
        flaky = DurableBroker(broker.root, lease_s=10.0,
                              retry_budget=10_000, clock=clock)
        job_id = flaky.submit(spec())
        for _ in range(40):
            job = flaky.lease("a0")
            flaky.fail(job_id, "a0", job.attempts, "boom")
            clock.advance(120.0)
        history = flaky.job(job_id).history
        assert len(history) == HISTORY_LIMIT
