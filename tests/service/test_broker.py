"""Durable broker: lease lifecycle, fencing, crash recovery."""

import json

import pytest

from repro.core.parallel import backoff_delay
from repro.errors import ServiceError, StaleLease
from repro.service import DEAD, DONE, LEASED, QUEUED, DurableBroker, JobSpec


def spec(k=1, seed=0):
    return JobSpec(app="probe", preset="tiny", kind="cs", ks=(0, k),
                   seed=seed, warmup_accesses=2_000, measure_accesses=1_000)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(tmp_path, clock):
    return DurableBroker(tmp_path, lease_s=10.0, retry_budget=3,
                         clock=clock)


class TestLifecycle:
    def test_submit_lease_complete(self, broker):
        job_id = broker.submit(spec(), tenant="t1")
        job = broker.lease("a0")
        assert job.id == job_id
        assert job.state == LEASED
        assert job.attempts == 1
        broker.complete(job_id, "a0", 1, result_path="r.json",
                        telemetry={"points_done": 2})
        done = broker.job(job_id)
        assert done.state == DONE
        assert done.result_path == "r.json"
        assert done.telemetry["points_done"] == 2
        assert broker.drained()

    def test_lease_is_fifo_over_submission_order(self, broker):
        first = broker.submit(spec(1))
        second = broker.submit(spec(2))
        assert broker.lease("a0").id == first
        assert broker.lease("a1").id == second
        assert broker.lease("a2") is None

    def test_renew_extends_the_deadline(self, broker, clock):
        job_id = broker.submit(spec())
        job = broker.lease("a0")
        first_deadline = job.deadline
        clock.advance(5.0)
        new_deadline = broker.renew(job_id, "a0", 1)
        assert new_deadline == pytest.approx(first_deadline + 5.0)

    def test_ids_embed_the_spec_fingerprint(self, broker):
        job_id = broker.submit(spec())
        assert job_id.startswith("j00000-")
        assert spec().config_key().startswith(job_id.split("-", 1)[1])


class TestFencing:
    def test_stale_agent_cannot_renew_or_complete(self, broker, clock):
        job_id = broker.submit(spec())
        broker.lease("a0")
        clock.advance(11.0)  # past the 10s lease
        assert broker.requeue_expired() == [(job_id, QUEUED)]
        clock.advance(60.0)  # clear the requeue backoff
        job = broker.lease("a1")
        assert (job.agent, job.attempts) == ("a1", 2)
        with pytest.raises(StaleLease):
            broker.renew(job_id, "a0", 1)
        with pytest.raises(StaleLease):
            broker.complete(job_id, "a0", 1)
        # The rightful holder is unaffected.
        broker.complete(job_id, "a1", 2)
        assert broker.job(job_id).state == DONE

    def test_double_complete_is_fenced(self, broker):
        job_id = broker.submit(spec())
        broker.lease("a0")
        broker.complete(job_id, "a0", 1)
        with pytest.raises(StaleLease):
            broker.complete(job_id, "a0", 1)

    def test_unknown_job_raises(self, broker):
        with pytest.raises(ServiceError, match="unknown job"):
            broker.renew("j99999-deadbeef", "a0", 1)


class TestRequeueAndDeadLetter:
    def test_expired_lease_requeues_with_deterministic_backoff(
        self, broker, clock
    ):
        job_id = broker.submit(spec())
        broker.lease("a0")
        clock.advance(11.0)
        broker.requeue_expired()
        job = broker.job(job_id)
        assert job.state == QUEUED
        assert job.failures == 1
        expected = backoff_delay(0, job_id, 0, 0.25, 30.0)
        assert job.not_before == pytest.approx(clock.t + expected)
        # Not leasable until the backoff passes.
        assert broker.lease("a1") is None
        clock.advance(expected + 0.01)
        assert broker.lease("a1").id == job_id

    def test_reported_failure_requeues_with_the_error(self, broker, clock):
        job_id = broker.submit(spec())
        broker.lease("a0")
        assert broker.fail(job_id, "a0", 1, "boom") == QUEUED
        job = broker.job(job_id)
        assert job.state == QUEUED
        assert "boom" in job.errors[-1]

    def test_poison_job_routes_to_dead_letter(self, broker, clock):
        job_id = broker.submit(spec())
        for _ in range(2):
            broker.lease("a0")
            clock.advance(11.0)
            broker.requeue_expired()
            clock.advance(60.0)
        broker.lease("a0")
        clock.advance(11.0)
        assert broker.requeue_expired() == [(job_id, DEAD)]
        job = broker.job(job_id)
        assert job.state == DEAD
        assert not job.active
        assert broker.dead_letter()[0].id == job_id
        assert broker.drained()  # dead jobs do not block the drain
        assert broker.lease("a1") is None

    def test_completion_resets_the_poison_counter(self, broker, clock):
        job_id = broker.submit(spec())
        broker.lease("a0")
        broker.fail(job_id, "a0", 1, "transient")
        clock.advance(60.0)
        job = broker.lease("a1")
        broker.complete(job_id, "a1", job.attempts)
        assert broker.job(job_id).failures == 0


class TestDurability:
    def test_state_survives_reopen(self, tmp_path, clock):
        first = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = first.submit(spec(), tenant="t1")
        first.lease("a0")
        # A brand-new instance replays the log to the same state.
        second = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job = second.job(job_id)
        assert job.state == LEASED
        assert job.agent == "a0"
        assert job.tenant == "t1"
        assert job.spec == spec()

    def test_two_instances_see_each_others_writes(self, tmp_path, clock):
        a = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        b = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = a.submit(spec())
        job = b.lease("b0")  # b syncs and leases a's submission
        assert job.id == job_id
        assert a.job(job_id).state == LEASED  # a syncs b's lease

    def test_torn_trailing_line_is_repaired(self, tmp_path, clock):
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec())
        broker.submit(spec(2))
        # Simulate a writer killed mid-append: chop the final line.
        log = tmp_path / "queue.jsonl"
        log.write_bytes(log.read_bytes()[:-10])
        fresh = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        assert fresh.repaired_lines == 1
        # The torn submit never became durable; the intact one survived.
        assert [j.id for j in fresh.jobs()] == [job_id]
        # And the log is appendable again: the next event lands intact.
        fresh.lease("a0")
        lines = log.read_bytes().splitlines()
        assert json.loads(lines[-1])["event"] == "lease"

    def test_lease_grants_survive_crash_of_the_broker_process(
        self, tmp_path, clock
    ):
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec())
        broker.lease("a0")
        clock.advance(11.0)
        # "Crash": drop the instance; the supervisor's fresh broker
        # still sees the expired lease and requeues it.
        fresh = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        assert fresh.requeue_expired() == [(job_id, QUEUED)]
