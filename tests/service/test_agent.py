"""Agents: exactly-once results, journal resume, stale-lease abandon."""

import json
from pathlib import Path

import pytest

from repro.core.journal import CampaignJournal
from repro.core.parallel import PointRunner, ResultCache
from repro.service import (
    DEAD,
    DEAD_RETRIES,
    DONE,
    LEASED,
    QUEUED,
    DurableBroker,
    JobSpec,
    MeasurementAgent,
    ServiceClient,
)
from repro.service.agent import (
    sweep_payload,
    traceback_head,
    write_result_atomic,
)
from repro.service.jobs import APP_PROFILES


def spec(ks=(0, 1), seed=0, app="probe"):
    return JobSpec(app=app, preset="tiny", kind="cs", ks=ks, seed=seed,
                   warmup_accesses=2_000, measure_accesses=1_000)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def executed_points(telemetry):
    """Points that actually ran side effects (everything not served
    from the journal or the cache)."""
    return (telemetry["points_done"] - telemetry["journal_hits"]
            - telemetry["cache_hits"])


class TestExactlyOnce:
    def test_drain_completes_and_results_match_serial(self, tmp_path):
        client = ServiceClient(tmp_path)
        job_id = client.submit(spec())
        assert client.drain() == 1
        job = client.status(job_id)
        assert job.state == DONE
        reference = sweep_payload(
            spec().build_measurement().sweep("cs", (0, 1))
        )
        assert client.result(job_id) == reference

    def test_duplicate_spec_is_served_entirely_from_cache(self, tmp_path):
        client = ServiceClient(tmp_path)
        first = client.submit(spec(), tenant="t1")
        second = client.submit(spec(), tenant="t2")
        client.drain()
        tele1 = client.status(first).telemetry
        tele2 = client.status(second).telemetry
        assert executed_points(tele1) == 2  # measured once...
        assert executed_points(tele2) == 0  # ...never again
        assert tele2["cache_hits"] + tele2["journal_hits"] == 2
        assert (Path(client.status(first).result_path).read_bytes()
                == Path(client.status(second).result_path).read_bytes())


class TestResume:
    def test_requeued_job_resumes_from_the_dead_agents_journal(
        self, tmp_path
    ):
        clock = FakeClock()
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec(ks=(0, 1, 2, 3)))
        leased = broker.lease("dead0")
        assert leased.state == LEASED

        # The doomed agent durably journals two points, then is SIGKILLed
        # (simulated: its journal survives, its process state does not).
        dead_agent = MeasurementAgent(tmp_path, "dead0", broker=broker)
        journal = CampaignJournal(
            dead_agent.journal_path(leased),
            config_key=leased.spec.config_key(),
        )
        runner = PointRunner(cache=dead_agent.cache, journal=journal)
        leased.spec.build_measurement(runner=runner).sweep("cs", (0, 1))
        assert len(journal) == 2

        clock.advance(11.0)
        assert broker.requeue_expired() == [(job_id, "queued")]
        clock.advance(60.0)  # clear the backoff gate

        # A replacement agent drains: it must resume, not re-measure.
        agent = MeasurementAgent(tmp_path, "a1", broker=broker)
        assert agent.run_forever(exit_when_drained=True) == 1
        job = broker.job(job_id)
        assert job.state == DONE
        assert job.attempts == 2
        assert job.telemetry["journal_hits"] >= 2
        assert executed_points(job.telemetry) == 2  # only the remainder

        reference = sweep_payload(
            spec(ks=(0, 1, 2, 3)).build_measurement().sweep("cs", (0, 1, 2, 3))
        )
        assert json.loads(Path(job.result_path).read_text()) == reference


class TestStaleLease:
    def test_superseded_attempt_is_abandoned_not_completed(self, tmp_path):
        clock = FakeClock()
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec())
        stale = broker.lease("zombie")
        clock.advance(11.0)
        broker.requeue_expired()
        clock.advance(60.0)
        current = broker.lease("a1")
        assert (current.agent, current.attempts) == ("a1", 2)

        # The zombie finishes its work anyway; the fence refuses it.
        zombie = MeasurementAgent(tmp_path, "zombie", broker=broker)
        zombie.run_job(stale)
        assert zombie.jobs_abandoned == 1
        assert zombie.jobs_run == 0
        job = broker.job(job_id)
        assert job.state == LEASED
        assert job.agent == "a1"


def _bomb_builder(params):
    # Explodes at build time with an exception *outside* the ReproError
    # hierarchy — the regression case for the dangling-lease bug.
    raise KeyError("tuning table entry missing")


@pytest.fixture
def bomb_app(monkeypatch):
    monkeypatch.setitem(APP_PROFILES, "bomb", _bomb_builder)


class TestUnexpectedCrash:
    def test_build_time_explosion_reports_fail_not_dangle(
        self, tmp_path, bomb_app
    ):
        clock = FakeClock()
        broker = DurableBroker(tmp_path, lease_s=10.0, clock=clock)
        job_id = broker.submit(spec(app="bomb"))
        agent = MeasurementAgent(tmp_path, "a0", broker=broker)
        agent.run_job(broker.lease("a0"))

        # Counted as a crash (a bug), not as a completion or an abandon.
        assert agent.jobs_crashed == 1
        assert agent.jobs_run == 0
        assert agent.jobs_abandoned == 0

        # The broker heard about it immediately: the job is requeued
        # with the crash reason, NOT left leased until lease expiry.
        record = broker.job(job_id)
        assert record.state == QUEUED
        assert record.agent is None
        assert "unexpected KeyError" in record.errors[-1]
        assert "tuning table entry missing" in record.errors[-1]

        # And it is re-leasable as soon as its backoff passes — no
        # dangling lease holding it hostage for lease_s.
        clock.advance(60.0)
        assert broker.lease("a1").id == job_id

    def test_repeated_crashes_dead_letter_as_retries(
        self, tmp_path, bomb_app
    ):
        clock = FakeClock()
        broker = DurableBroker(tmp_path, lease_s=10.0, retry_budget=3,
                               clock=clock)
        job_id = broker.submit(spec(app="bomb"))
        agent = MeasurementAgent(tmp_path, "a0", broker=broker)
        for _ in range(3):
            job = broker.lease("a0")
            assert job is not None
            agent.run_job(job)
            clock.advance(120.0)  # clear the requeue backoff
        record = broker.job(job_id)
        assert record.state == DEAD
        assert record.dead_reason == DEAD_RETRIES
        assert agent.jobs_crashed == 3
        assert broker.lease("a1") is None

    def test_traceback_head_is_one_bounded_line(self):
        try:
            raise KeyError("boom")
        except KeyError as exc:
            head = traceback_head(exc)
            truncated = traceback_head(exc, limit=20)
        assert "\n" not in head
        assert "KeyError" in head
        assert "boom" in head
        assert len(truncated) == 20  # the bound holds


class TestResultArtifact:
    def test_write_result_atomic_replaces_durably(self, tmp_path, monkeypatch):
        import os as os_mod

        calls = []
        real_fsync, real_replace = os_mod.fsync, os_mod.replace
        monkeypatch.setattr(
            "os.fsync", lambda fd: (calls.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            "os.replace",
            lambda a, b: (calls.append("replace"), real_replace(a, b))[1],
        )
        target = tmp_path / "out" / "r.json"
        write_result_atomic(target, {"x": 1})
        assert json.loads(target.read_text()) == {"x": 1}
        assert calls == ["fsync", "replace"]
        assert not list(target.parent.glob("*.tmp"))

    def test_failed_write_leaves_no_droppings(self, tmp_path, monkeypatch):
        def boom(a, b):
            raise OSError("disk full")

        monkeypatch.setattr("os.replace", boom)
        target = tmp_path / "r.json"
        with pytest.raises(OSError):
            write_result_atomic(target, {"x": 1})
        assert not target.exists()
        assert not list(tmp_path.glob("*.tmp"))
