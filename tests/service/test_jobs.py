"""Declarative job specs: validation, identity, round-trips."""

import pytest

from repro.errors import ServiceError
from repro.service import JobSpec
from repro.service.jobs import resolve_app, resolve_preset


def make_spec(**overrides):
    base = dict(app="probe", preset="tiny", kind="cs", ks=(0, 1, 2),
                warmup_accesses=2_000, measure_accesses=1_000)
    base.update(overrides)
    return JobSpec(**base)


class TestValidation:
    def test_unknown_app_rejected_at_construction(self):
        with pytest.raises(ServiceError, match="unknown app profile"):
            make_spec(app="nope")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ServiceError, match="unknown socket preset"):
            make_spec(preset="nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown sweep kind"):
            make_spec(kind="xx")

    def test_empty_and_duplicate_ks_rejected(self):
        with pytest.raises(ServiceError, match="at least one k"):
            make_spec(ks=())
        with pytest.raises(ServiceError, match="duplicate"):
            make_spec(ks=(0, 1, 1))

    def test_negative_k_rejected(self):
        with pytest.raises(ServiceError, match="non-negative"):
            make_spec(ks=(0, -1))

    def test_non_scalar_app_param_rejected(self):
        with pytest.raises(ServiceError, match="must be a scalar"):
            make_spec(app_params={"dist": ["zipf"]})

    def test_resolvers_raise_on_unknown_names(self):
        with pytest.raises(ServiceError):
            resolve_preset("nope")
        with pytest.raises(ServiceError):
            resolve_app("nope", {})

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ServiceError, match="deadline_s must be positive"):
            make_spec(deadline_s=0.0)
        with pytest.raises(ServiceError, match="deadline_s must be positive"):
            make_spec(deadline_s=-1.0)
        make_spec(deadline_s=1.0)  # positive is fine


class TestIdentity:
    def test_equal_specs_share_config_key(self):
        assert make_spec().config_key() == make_spec().config_key()

    def test_any_field_change_changes_key(self):
        base = make_spec().config_key()
        assert make_spec(seed=1).config_key() != base
        assert make_spec(ks=(0, 1)).config_key() != base
        assert make_spec(app_params={"dist": "zipf"}).config_key() != base

    def test_round_trip_preserves_identity(self):
        spec = make_spec(app_params={"dist": "zipf", "buffer_bytes": 1 << 20})
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.config_key() == spec.config_key()

    def test_scheduling_knobs_do_not_change_measurement_identity(self):
        # priority/deadline_s say how *urgently* to measure, not *what*
        # to measure: two submissions differing only in urgency must
        # share cache keys, journal keys — and therefore measurements.
        base = make_spec().config_key()
        assert make_spec(priority=5).config_key() == base
        assert make_spec(deadline_s=30.0).config_key() == base
        assert make_spec(priority=2, deadline_s=5.0).config_key() == base

    def test_scheduling_knobs_round_trip(self):
        spec = make_spec(priority=3, deadline_s=45.0)
        again = JobSpec.from_dict(spec.to_dict())
        assert again.priority == 3
        assert again.deadline_s == 45.0
        assert again == spec

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ServiceError, match="malformed job spec"):
            JobSpec.from_dict({"app": "probe"})


class TestExecution:
    def test_build_measurement_runs_the_declared_sweep(self):
        spec = make_spec(ks=(0, 1))
        sweep = spec.build_measurement().sweep(spec.kind, spec.ks)
        assert [p.k for p in sweep.points] == [0, 1]

    def test_every_registered_app_profile_builds(self):
        from repro.service import APP_PROFILES

        for app in APP_PROFILES:
            spec = make_spec(app=app, ks=(0,))
            am = spec.build_measurement()
            assert am.workload_spec == spec.workload_spec()
