"""Admission control: bounded queue, per-tenant quotas, load shedding."""

import pytest

from repro.errors import ServiceError, ServiceOverloaded
from repro.service import AdmissionPolicy, DurableBroker, JobSpec


def spec(k):
    return JobSpec(app="probe", preset="tiny", kind="cs", ks=(0, k),
                   warmup_accesses=2_000, measure_accesses=1_000)


class TestPolicy:
    def test_bounds_must_be_positive(self):
        with pytest.raises(ServiceError):
            AdmissionPolicy(max_active=0)
        with pytest.raises(ServiceError):
            AdmissionPolicy(max_active_per_tenant=0)

    def test_admits_under_both_bounds(self):
        AdmissionPolicy(max_active=2, max_active_per_tenant=1).admit(
            "t1", 1, {"t2": 1}
        )

    def test_global_bound_sheds(self):
        policy = AdmissionPolicy(max_active=2, max_active_per_tenant=2)
        with pytest.raises(ServiceOverloaded, match="queue is at its bound"):
            policy.admit("t1", 2, {"t1": 2})

    def test_tenant_quota_sheds_only_the_offender(self):
        policy = AdmissionPolicy(max_active=10, max_active_per_tenant=1)
        with pytest.raises(ServiceOverloaded, match="tenant 'greedy'"):
            policy.admit("greedy", 1, {"greedy": 1})
        # Same queue state, different tenant: admitted.
        policy.admit("polite", 1, {"greedy": 1})

    def test_round_trip(self):
        policy = AdmissionPolicy(max_active=5, max_active_per_tenant=2)
        assert AdmissionPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_keys_are_rejected_not_ignored(self):
        # The classic typo: a persisted policy with "max_actve" used to
        # silently yield the default bound — the operator's intended
        # limit simply did not exist.
        with pytest.raises(ServiceError) as err:
            AdmissionPolicy.from_dict({"max_actve": 2})
        message = str(err.value)
        assert "max_actve" in message
        assert "max_active" in message  # the valid fields are listed
        assert "max_active_per_tenant" in message

    def test_multiple_unknown_keys_are_all_reported(self):
        with pytest.raises(ServiceError, match="'bogus', 'extra'"):
            AdmissionPolicy.from_dict(
                {"max_active": 2, "extra": 1, "bogus": 2}
            )

    def test_partial_dicts_still_fill_defaults(self):
        policy = AdmissionPolicy.from_dict({"max_active": 5})
        assert policy.max_active == 5
        assert policy.max_active_per_tenant == 16


class TestBrokerIntegration:
    def test_rejection_is_immediate_and_stateless(self, tmp_path):
        broker = DurableBroker(
            tmp_path, admission=AdmissionPolicy(max_active=2,
                                                max_active_per_tenant=2)
        )
        broker.submit(spec(1), tenant="t1")
        broker.submit(spec(2), tenant="t1")
        with pytest.raises(ServiceOverloaded):
            broker.submit(spec(3), tenant="t1")
        # The shed submission left no trace in the durable log.
        assert broker.stats()["jobs"] == 2

    def test_quota_exhaustion_spares_other_tenants(self, tmp_path):
        broker = DurableBroker(
            tmp_path, admission=AdmissionPolicy(max_active=10,
                                                max_active_per_tenant=1)
        )
        broker.submit(spec(1), tenant="greedy")
        with pytest.raises(ServiceOverloaded, match="other tenants"):
            broker.submit(spec(2), tenant="greedy")
        broker.submit(spec(3), tenant="polite")

    def test_completed_jobs_free_admission_slots(self, tmp_path):
        broker = DurableBroker(
            tmp_path, admission=AdmissionPolicy(max_active=1)
        )
        broker.submit(spec(1), tenant="t1")
        with pytest.raises(ServiceOverloaded):
            broker.submit(spec(2), tenant="t1")
        job = broker.lease("a0")
        broker.complete(job.id, "a0", job.attempts)
        broker.submit(spec(2), tenant="t1")  # slot freed

    def test_policy_is_persisted_with_the_queue(self, tmp_path):
        DurableBroker(tmp_path, admission=AdmissionPolicy(
            max_active=1, max_active_per_tenant=1))
        # A second instance with no (or different) policy adopts the
        # queue's recorded bounds.
        other = DurableBroker(tmp_path)
        other.submit(spec(1), tenant="t1")
        with pytest.raises(ServiceOverloaded):
            other.submit(spec(2), tenant="t2")
