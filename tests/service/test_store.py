"""Results store: byte parity with artifacts, backfill, queries."""

import json
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import (
    STORE_SCHEMA,
    DurableBroker,
    JobSpec,
    ResultsStore,
    ServiceClient,
)


def spec(ks=(0, 1), seed=0, app="probe", **overrides):
    base = dict(app=app, preset="tiny", kind="cs", ks=ks, seed=seed,
                warmup_accesses=2_000, measure_accesses=1_000)
    base.update(overrides)
    return JobSpec(**base)


@pytest.fixture
def drained(tmp_path):
    """A root with two completed jobs (distinct tenants/apps) plus its
    client."""
    client = ServiceClient(tmp_path)
    j1 = client.submit(spec(), tenant="alice")
    j2 = client.submit(spec(app="stream", seed=1), tenant="bob")
    assert client.drain() == 2
    return client, j1, j2


class TestAgentPopulation:
    def test_agent_writes_store_rows_on_complete(self, drained):
        client, j1, j2 = drained
        rows = client.store.query_jobs()
        assert {r["job_id"] for r in rows} == {j1, j2}
        assert all(r["state"] == "done" for r in rows)
        points = client.store.query_points()
        assert len(points) == 4  # two jobs x two ks

    def test_point_payload_matches_artifact_byte_for_byte(self, drained):
        client, j1, j2 = drained
        for job_id in (j1, j2):
            artifact = Path(client.status(job_id).result_path)
            rebuilt = json.dumps(
                client.store.point_payload(job_id),
                sort_keys=True, indent=1,
            ).encode()
            assert rebuilt == artifact.read_bytes()

    def test_job_row_carries_identity_and_history(self, drained):
        client, j1, _ = drained
        (row,) = client.store.query_jobs(job_id=j1)
        assert row["tenant"] == "alice"
        assert row["config_key"] == spec().config_key()
        assert row["trace_id"] == client.status(j1).trace_id
        assert [h["event"] for h in row["history"]] == [
            "submit", "lease", "complete",
        ]
        assert row["telemetry"]["points_done"] == 2

    def test_slowdown_is_relative_to_the_lowest_k(self, drained):
        client, j1, _ = drained
        points = client.store.query_points(job_id=j1)
        by_k = {p["k"]: p for p in points}
        assert by_k[0]["slowdown"] == pytest.approx(1.0)
        assert by_k[1]["slowdown"] == pytest.approx(
            by_k[1]["t_access_ns"] / by_k[0]["t_access_ns"]
        )
        assert by_k[1]["slowdown"] > 1.0  # interference slows the probe


class TestBackfill:
    def test_backfill_rebuilds_a_deleted_store(self, drained, tmp_path):
        client, j1, j2 = drained
        reference = {
            job_id: client.store.point_payload(job_id)
            for job_id in (j1, j2)
        }
        client.store.close()
        for path in tmp_path.glob("store.sqlite*"):
            path.unlink()
        fresh = ResultsStore(tmp_path)
        assert fresh.backfill(client.broker) == 2
        for job_id in (j1, j2):
            assert fresh.point_payload(job_id) == reference[job_id]

    def test_backfill_is_incremental(self, drained, tmp_path):
        client, *_ = drained
        assert client.store.backfill(client.broker) == 0  # nothing stale
        j3 = client.submit(spec(seed=7), tenant="alice")
        client.drain()
        # The agent already recorded j3; a state-matching row is skipped.
        assert client.store.backfill(client.broker) == 0
        assert client.store.backfill(client.broker, force=True) == 3
        assert client.store.point_payload(j3)

    def test_backfill_covers_jobs_missing_from_the_store(self, tmp_path):
        # Simulate the crash window: job completed, store write lost.
        client = ServiceClient(tmp_path)
        job_id = client.submit(spec())
        client.drain()
        client.store.close()
        for path in tmp_path.glob("store.sqlite*"):
            path.unlink()
        store = ResultsStore(tmp_path)
        with pytest.raises(ServiceError, match="no point rows"):
            store.point_payload(job_id)
        assert store.backfill(client.broker) == 1
        artifact = Path(client.status(job_id).result_path).read_bytes()
        rebuilt = json.dumps(store.point_payload(job_id),
                             sort_keys=True, indent=1).encode()
        assert rebuilt == artifact

    def test_backfill_torn_artifact_is_a_service_error(self, drained):
        client, j1, _ = drained
        artifact = Path(client.status(j1).result_path)
        artifact.write_bytes(artifact.read_bytes()[:-20])
        with pytest.raises(ServiceError, match="torn or corrupt"):
            client.store.backfill(client.broker, force=True)


class TestQueries:
    def test_filter_by_tenant_app_preset(self, drained):
        client, j1, j2 = drained
        assert {r["job_id"] for r in
                client.store.query_points(tenant="alice")} == {j1}
        assert {r["job_id"] for r in
                client.store.query_points(app="stream")} == {j2}
        assert client.store.query_points(preset="xeon20mb") == []

    def test_filter_by_k_range(self, drained):
        client, *_ = drained
        ks = [r["k"] for r in client.store.query_points(k_min=1)]
        assert ks == [1, 1]
        assert client.store.query_points(k_min=2, k_max=5) == []
        both = client.store.query_points(k_min=0, k_max=1)
        assert len(both) == 4

    def test_stats(self, drained):
        client, *_ = drained
        stats = client.store.stats()
        assert stats["jobs"] == 2
        assert stats["points"] == 4
        assert stats["by_state"] == {"done": 2}
        assert stats["schema"] == STORE_SCHEMA


class TestSchemaAndConcurrency:
    def test_wal_mode_is_active(self, tmp_path):
        store = ResultsStore(tmp_path)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_schema_mismatch_fails_loudly(self, tmp_path):
        store = ResultsStore(tmp_path)
        store._conn.execute(
            "UPDATE meta SET value='999' WHERE key='schema'")
        store._conn.commit()
        store.close()
        with pytest.raises(ServiceError, match="schema 999"):
            ResultsStore(tmp_path)

    def test_two_writers_interleave(self, tmp_path):
        # Two store instances (two "agent processes") writing distinct
        # jobs against one WAL database must both land.
        broker = DurableBroker(tmp_path)
        ids = [broker.submit(spec(seed=s)) for s in (0, 1)]
        for job_id, agent in zip(ids, ("a0", "a1")):
            leased = broker.lease(agent)
            broker.complete(leased.id, agent, leased.attempts)
        a, b = ResultsStore(tmp_path), ResultsStore(tmp_path)
        a.record_job(broker.job(ids[0]))
        b.record_job(broker.job(ids[1]))
        assert {r["job_id"] for r in a.query_jobs()} == set(ids)

    def test_record_job_is_idempotent(self, drained):
        client, j1, _ = drained
        payload = client.store.point_payload(j1)
        before = client.store.query_points(job_id=j1)
        client.store.record_job(client.broker.job(j1), payload)
        assert client.store.query_points(job_id=j1) == before
