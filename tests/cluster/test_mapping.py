"""Process-to-hardware mappings (Section IV's p processes/processor)."""

import pytest

from repro.cluster import Distance, ProcessMapping
from repro.config import xeon20mb_cluster
from repro.errors import ConfigError


@pytest.fixture
def cluster():
    return xeon20mb_cluster(n_nodes=12)


class TestGeometry:
    def test_paper_mcb_mappings(self, cluster):
        """MCB: 24 ranks, p processes/socket -> 24/(2p) nodes."""
        for p, nodes in [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2)]:
            m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=p)
            assert m.nodes_used == nodes
            assert m.free_cores_per_socket == 8 - p

    def test_ranks_on_socket_blocks(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=4)
        assert list(m.ranks_on_socket(0)) == [0, 1, 2, 3]
        assert list(m.ranks_on_socket(2)) == [8, 9, 10, 11]

    def test_socket_and_node_of(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        assert m.socket_of(0) == 0 and m.socket_of(3) == 1
        assert m.node_of(3) == 0 and m.node_of(4) == 1


class TestDistances:
    def test_distance_classes(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        assert m.distance(0, 0) == Distance.SELF
        assert m.distance(0, 1) == Distance.SOCKET
        assert m.distance(0, 2) == Distance.NODE
        assert m.distance(0, 4) == Distance.REMOTE

    def test_remote_fraction_ring(self, cluster):
        """Block placement: 1/p of ring messages leave the socket."""
        for p in (1, 2, 4):
            m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=p)
            assert m.remote_fraction_ring() == pytest.approx(1.0 / p)

    def test_single_socket_job_has_no_remote(self, cluster):
        m = ProcessMapping(cluster, n_ranks=4, procs_per_socket=4)
        assert m.remote_fraction_ring() == 0.0

    def test_neighbor_profile(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        profile = m.neighbor_distance_profile(1, [0, 2, 5])
        assert profile[Distance.SOCKET] == 1
        assert profile[Distance.NODE] == 1
        assert profile[Distance.REMOTE] == 1


class TestValidation:
    def test_uneven_fill_rejected(self, cluster):
        with pytest.raises(ConfigError, match="evenly"):
            ProcessMapping(cluster, n_ranks=24, procs_per_socket=5)

    def test_too_many_per_socket_rejected(self, cluster):
        with pytest.raises(ConfigError):
            ProcessMapping(cluster, n_ranks=18, procs_per_socket=9)

    def test_cluster_too_small_rejected(self, cluster):
        with pytest.raises(ConfigError, match="sockets"):
            ProcessMapping(cluster, n_ranks=1000, procs_per_socket=1)

    def test_rank_range_checked(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        with pytest.raises(ConfigError):
            m.distance(0, 24)
        with pytest.raises(ConfigError):
            m.ranks_on_socket(99)

    def test_describe(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        assert "24 ranks" in m.describe()


class TestRemoteFractionOpenChain:
    """Regression: ``remote_fraction_ring`` assumed a wrapping ring; an
    open chain (no rank n-1 <-> 0 edge) has one fewer crossing."""

    def test_open_chain_counts_interior_boundaries(self, cluster):
        m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=4)
        # 6 sockets -> 5 interior boundaries; 23 undirected chain edges.
        assert m.remote_fraction_ring(wrap=False) == pytest.approx(5 / 23)
        assert m.remote_fraction_ring(wrap=True) == pytest.approx(1 / 4)

    def test_open_chain_never_above_wrapped(self, cluster):
        """(S-1)/(n-1) <= S/n, equal only at p=1 where every edge
        crosses either way."""
        for p in (1, 2, 4):
            m = ProcessMapping(cluster, n_ranks=24, procs_per_socket=p)
            open_frac = m.remote_fraction_ring(wrap=False)
            if p == 1:
                assert open_frac == m.remote_fraction_ring() == 1.0
            else:
                assert open_frac < m.remote_fraction_ring()

    def test_single_socket_zero_both_ways(self, cluster):
        m = ProcessMapping(cluster, n_ranks=4, procs_per_socket=4)
        assert m.remote_fraction_ring(wrap=True) == 0.0
        assert m.remote_fraction_ring(wrap=False) == 0.0

    def test_two_ranks_no_wrap_edge(self, cluster):
        """2 ranks on 2 sockets: the chain's single edge crosses; the
        'ring' is the same two directed messages, also crossing."""
        m = ProcessMapping(cluster, n_ranks=2, procs_per_socket=1)
        assert m.remote_fraction_ring(wrap=False) == pytest.approx(1.0)
        assert m.remote_fraction_ring(wrap=True) == pytest.approx(1.0)
