"""Communication cost model and OS-noise amplification."""

import math

import numpy as np
import pytest

from repro.cluster import CommModel, Distance, NoiseModel
from repro.config import NetworkConfig
from repro.errors import CommError, ConfigError


@pytest.fixture
def comm():
    return CommModel.for_network(NetworkConfig())


class TestCommModel:
    def test_distance_ordering(self, comm):
        n = 64 * 1024
        t_sock = comm.p2p_ns(n, Distance.SOCKET)
        t_node = comm.p2p_ns(n, Distance.NODE)
        t_rem = comm.p2p_ns(n, Distance.REMOTE)
        assert t_sock < t_node < t_rem

    def test_self_messages_are_free(self, comm):
        assert comm.p2p_ns(1000, Distance.SELF) == 0.0

    def test_exchange_is_max_over_classes(self, comm):
        by_dist = {Distance.SOCKET: 10_000, Distance.REMOTE: 10_000}
        assert comm.exchange_ns(by_dist) == comm.p2p_ns(10_000, Distance.REMOTE)

    def test_exchange_skips_zero_volumes(self, comm):
        assert comm.exchange_ns({Distance.REMOTE: 0}) == 0.0

    def test_allreduce_log_steps(self, comm):
        one = comm.p2p_ns(8, Distance.REMOTE)
        assert comm.allreduce_ns(8, 64) == pytest.approx(2 * 6 * one)
        assert comm.allreduce_ns(8, 1) == 0.0

    def test_barrier_is_zero_byte_allreduce(self, comm):
        assert comm.barrier_ns(16) == comm.allreduce_ns(0, 16)

    def test_negative_size_rejected(self, comm):
        with pytest.raises(CommError):
            comm.p2p_ns(-1, Distance.REMOTE)

    def test_missing_distance_rejected(self):
        empty = CommModel(costs={})
        with pytest.raises(CommError):
            empty.p2p_ns(10, Distance.REMOTE)


class TestNoiseModel:
    def test_sample_mean_is_one(self):
        noise = NoiseModel(sigma=0.05)
        rng = np.random.default_rng(0)
        factors = noise.sample_factor(rng, size=200_000)
        assert factors.mean() == pytest.approx(1.0, abs=0.01)

    def test_sigma_zero_is_identity(self):
        noise = NoiseModel(sigma=0.0)
        rng = np.random.default_rng(0)
        assert noise.sample_factor(rng) == 1.0
        assert noise.expected_max_factor(4096) == 1.0
        assert noise.amplify(100.0, 4096) == 100.0

    def test_amplification_grows_with_scale(self):
        noise = NoiseModel(sigma=0.02)
        f = [noise.expected_max_factor(n) for n in (1, 24, 64, 4096)]
        assert f[0] == 1.0
        assert f[1] < f[2] < f[3]

    def test_amplification_matches_gumbel_formula(self):
        noise = NoiseModel(sigma=0.02)
        n = 64
        expected = math.exp(0.02 * math.sqrt(2 * math.log(n)) - 0.5 * 0.02**2)
        assert noise.expected_max_factor(n) == pytest.approx(expected)

    def test_empirical_max_close_to_model(self):
        """The Gumbel approximation should track the empirical maximum of
        n lognormal factors within a few percent."""
        noise = NoiseModel(sigma=0.03)
        rng = np.random.default_rng(1)
        n = 64
        maxima = noise.sample_factor(rng, size=(3000, n)).max(axis=1)
        assert noise.expected_max_factor(n) == pytest.approx(
            float(maxima.mean()), rel=0.03
        )

    def test_extra_cv_amplifies_more(self):
        noise = NoiseModel(sigma=0.01)
        base = noise.amplify(100.0, 64)
        jittery = noise.amplify(100.0, 64, extra_cv=0.1)
        assert jittery > base

    def test_validation(self):
        with pytest.raises(ConfigError):
            NoiseModel(sigma=-0.1)
        with pytest.raises(ConfigError):
            NoiseModel().expected_max_factor(0)
        with pytest.raises(ConfigError):
            NoiseModel().amplify(-1.0, 4)
