"""ClusterJob: representative-socket simulation + amplification."""

import pytest

from repro.apps import MCBProxy
from repro.cluster import ClusterJob, NoiseModel, ProcessMapping, run_job
from repro.config import xeon20mb_cluster
from repro.errors import ConfigError


@pytest.fixture
def cluster():
    return xeon20mb_cluster(n_nodes=12)


def mcb_factory(mapping, particles=20_000, iters=1):
    def build(rank, env):
        return MCBProxy(
            n_particles=particles,
            n_ranks=mapping.n_ranks,
            rank=rank,
            mapping=mapping,
            comm_env=env,
            n_iterations=iters,
        )

    return build


class TestValidation:
    def test_interference_must_fit_free_cores(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=6)
        with pytest.raises(ConfigError, match="do not fit"):
            ClusterJob(cluster, mapping, mcb_factory(mapping),
                       interference_kind="cs", n_interference=3)

    def test_kind_required_with_threads(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=1)
        with pytest.raises(ConfigError, match="without a kind"):
            ClusterJob(cluster, mapping, mcb_factory(mapping), n_interference=2)

    def test_unknown_kind_rejected(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=1)
        with pytest.raises(ConfigError, match="unknown interference"):
            ClusterJob(cluster, mapping, mcb_factory(mapping),
                       interference_kind="zap", n_interference=1)


class TestExecution:
    def test_job_produces_times_and_rank_map(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        res = run_job(cluster, mapping, mcb_factory(mapping), seed=3)
        assert res.time_ns > 0
        assert res.time_ns >= res.socket_makespan_ns  # amplification >= 1
        assert set(res.rank_finish_ns) == {0, 1}
        assert res.amplification >= 1.0
        assert "24 ranks" in res.mapping_desc

    def test_noise_off_means_no_amplification(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=1)
        res = run_job(
            cluster, mapping, mcb_factory(mapping),
            noise=NoiseModel(sigma=0.0), seed=3,
        )
        assert res.amplification == pytest.approx(1.0)
        assert res.time_ns == pytest.approx(res.socket_makespan_ns)

    def test_interference_slows_job(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=1)
        base = run_job(cluster, mapping, mcb_factory(mapping),
                       noise=NoiseModel(0.0), seed=3)
        loaded = run_job(cluster, mapping, mcb_factory(mapping),
                         interference_kind="cs", n_interference=5,
                         noise=NoiseModel(0.0), seed=3)
        assert loaded.time_ns > base.time_ns

    def test_deterministic_under_seed(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=2)
        a = run_job(cluster, mapping, mcb_factory(mapping), seed=9)
        b = run_job(cluster, mapping, mcb_factory(mapping), seed=9)
        assert a.time_ns == b.time_ns

    def test_multi_rank_socket_observes_jitter(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=4)
        res = run_job(cluster, mapping, mcb_factory(mapping), seed=5)
        assert res.observed_cv >= 0.0
        assert len(res.rank_finish_ns) == 4
