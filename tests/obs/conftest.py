import pytest

from repro.obs import reset_tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    """The tracer is a process-global singleton; leave it disabled and
    empty around every test."""
    reset_tracer()
    yield
    reset_tracer()
