"""Chrome-trace export, format-agnostic loading, and the ASCII summary."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    chrome_trace,
    configure_tracer,
    load_trace,
    span,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def record_small_trace(tmp_path):
    """A realistic little trace: sweep > points with cache lookups."""
    log = tmp_path / "t.jsonl"
    t = configure_tracer(log)
    with span("sweep", cat="sweep", kind="cs"):
        for k in range(4):
            with span("cache.get", cat="cache") as s:
                s.set(hit=k % 2 == 0)
            with span("point", cat="point", k=k):
                pass
    t.record_counters("runner.batch", {"points_done": 4, "utilization": 0.9})
    t.finish()
    return t, log


class TestChromeExport:
    def test_export_passes_schema_validation(self, tmp_path):
        t, _ = record_small_trace(tmp_path)
        trace = chrome_trace(t.events)
        assert validate_chrome_trace(trace) == []

    def test_timestamps_rebased_to_zero(self, tmp_path):
        t, _ = record_small_trace(tmp_path)
        trace = chrome_trace(t.events)
        ts = [e["ts"] for e in trace["traceEvents"] if "ts" in e]
        assert min(ts) == 0.0

    def test_thread_name_metadata_per_lane(self, tmp_path):
        t, _ = record_small_trace(tmp_path)
        trace = chrome_trace(t.events)
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(metas) == 1  # single-threaded trace: one lane
        assert metas[0]["name"] == "thread_name"

    def test_written_file_loads_back_identically(self, tmp_path):
        t, log = record_small_trace(tmp_path)
        out = write_chrome_trace(tmp_path / "t.json", chrome_trace(t.events))
        native_spans, native_counters, _ = load_trace(log)
        chrome_spans, chrome_counters, _ = load_trace(out)
        assert [s["name"] for s in chrome_spans] == \
            [s["name"] for s in native_spans]
        assert [s["args"] for s in chrome_spans] == \
            [s["args"] for s in native_spans]
        for a, b in zip(chrome_spans, native_spans):
            assert a["dur"] == pytest.approx(b["dur"], abs=1e-9)
        assert chrome_counters[0]["values"] == native_counters[0]["values"]

    def test_validator_rejects_malformed_events(self):
        bad = {"traceEvents": [
            {"name": "ok", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
            {"name": "no-phase"},
            {"name": "neg", "ph": "X", "ts": -5, "dur": 1, "pid": 1},
            {"name": "ctr", "ph": "C", "ts": 0, "pid": 1,
             "args": {"rate": "fast"}},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 3
        assert validate_chrome_trace([]) == ["top level must be an object, got list"]
        assert validate_chrome_trace({}) == ["missing 'traceEvents' list"]

    def test_load_missing_file_raises_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_trace(tmp_path / "nope.json")


class TestSummary:
    def test_summary_sections(self, tmp_path):
        _, log = record_small_trace(tmp_path)
        report = summarize_trace(log)
        assert "per-phase time" in report
        assert "point" in report and "sweep" in report
        assert "point latency (n=4)" in report
        assert "p50=" in report and "p99=" in report
        assert "cache lookups (2 hit / 2 miss" in report
        assert "[H.H.]" in report  # chronological hit/miss marks
        assert "% busy" in report
        assert "runner.batch" in report

    def test_summary_of_chrome_export_matches_native(self, tmp_path):
        t, log = record_small_trace(tmp_path)
        out = write_chrome_trace(tmp_path / "t.json", chrome_trace(t.events))
        native = summarize_trace(log).split("\n", 1)[1]
        chrome = summarize_trace(out).split("\n", 1)[1]
        assert "point latency (n=4)" in chrome
        assert native.count("\n") == chrome.count("\n")

    def test_empty_trace_reported_not_crashed(self, tmp_path):
        t = configure_tracer(tmp_path / "t.jsonl")
        t.finish()
        assert "no spans" in summarize_trace(t.path)
