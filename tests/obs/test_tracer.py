"""Span tracer: singleton discipline, nesting, capture, crash safety."""

import json
import threading

import pytest

from repro.obs import (
    configure_tracer,
    load_trace,
    reset_tracer,
    span,
    tracer,
)
from repro.obs.tracer import _NULL_SPAN, TRACE_FORMAT, worker_capture


class TestSingletonDiscipline:
    def test_tracer_identity_survives_configure_and_reset(self):
        alias = tracer()
        configure_tracer(None)
        assert alias is tracer()
        reset_tracer()
        assert alias is tracer()

    def test_stale_alias_observes_live_spans_after_reset(self):
        # The session-telemetry aliasing bug, applied to the tracer: an
        # alias captured before a reset must keep observing the live
        # recorder, not a stranded dead object.
        alias = tracer()
        configure_tracer(None)
        reset_tracer()
        configure_tracer(None)
        with span("after-reset"):
            pass
        assert any(
            e.get("ev") == "span" and e["name"] == "after-reset"
            for e in alias.events
        )

    def test_disabled_span_is_shared_noop(self):
        assert not tracer().enabled
        handle = span("anything", cat="point", k=3)
        assert handle is _NULL_SPAN
        with handle as h:
            h.set(hit=True)  # must be a silent no-op
        assert tracer().events == []


class TestSpanRecording:
    def test_nesting_records_parent_ids(self):
        t = configure_tracer(None)
        with span("outer", cat="campaign") as outer:
            with span("inner", cat="sweep") as inner:
                assert inner.parent_id == outer.span_id
            with span("inner2", cat="sweep") as inner2:
                assert inner2.parent_id == outer.span_id
        spans = {e["name"]: e for e in t.events if e.get("ev") == "span"}
        # Children close (and emit) before the parent.
        assert list(spans) == ["inner", "inner2", "outer"]
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["inner2"]["parent"] == spans["outer"]["id"]
        assert "parent" not in spans["outer"]
        assert spans["inner"]["dur"] <= spans["outer"]["dur"]

    def test_nesting_is_per_thread(self):
        t = configure_tracer(None)
        seen = {}

        def worker():
            with span("threaded") as s:
                seen["parent"] = s.parent_id

        with span("main-side"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        # The other thread's span must not adopt this thread's stack.
        assert seen["parent"] is None
        assert t.events  # both spans recorded

    def test_exception_tags_error_label(self):
        t = configure_tracer(None)
        with pytest.raises(ValueError):
            with span("doomed", cat="attempt"):
                raise ValueError("boom")
        [ev] = [e for e in t.events if e.get("ev") == "span"]
        assert ev["args"]["error"] == "ValueError"

    def test_labels_set_mid_span_are_recorded(self):
        t = configure_tracer(None)
        with span("cache.get", cat="cache") as s:
            s.set(hit=True)
        [ev] = [e for e in t.events if e.get("ev") == "span"]
        assert ev["args"] == {"hit": True}

    def test_counters_split_numeric_from_labels(self):
        t = configure_tracer(None)
        t.record_counters("runner.batch", {
            "points_done": 4, "utilization": 0.9,
            "backend": "process", "flag": True,
        })
        assert t.counters["runner.batch"] == {
            "points_done": 4, "utilization": 0.9,
        }
        [ev] = [e for e in t.events if e.get("ev") == "counters"]
        assert ev["values"] == {"points_done": 4, "utilization": 0.9}
        assert ev["labels"] == {"backend": "process", "flag": True}


class TestWorkerCapture:
    def test_capture_buffers_spans_for_shipping(self):
        with worker_capture() as buffer:
            assert buffer is not None
            with span("point", cat="point", k=1):
                pass
        assert [e["name"] for e in buffer] == ["point"]
        assert not tracer().enabled  # capture ended with the context

    def test_live_tracer_skips_capture_unless_forced(self):
        configure_tracer(None)
        with worker_capture() as buffer:
            assert buffer is None  # spans already stream to the parent

    def test_force_overrides_inherited_stream(self, tmp_path):
        # A forked pool worker inherits the parent's open tracer; the
        # runner forces capture so the child's spans ship home instead
        # of racing the parent's file handle.
        log = tmp_path / "t.jsonl"
        configure_tracer(log)
        with worker_capture(force=True) as buffer:
            with span("point", cat="point"):
                pass
        assert [e["name"] for e in buffer] == ["point"]
        spans, _, _ = load_trace(log)
        assert spans == []  # nothing leaked through the inherited file

    def test_ingest_replays_shipped_events(self):
        t = configure_tracer(None)
        shipped = [
            {"ev": "span", "name": "point", "cat": "point", "t0": 1.0,
             "dur": 0.5, "pid": 4242, "tid": 1, "id": 1},
            {"ev": "counters", "name": "worker", "t0": 1.5, "pid": 4242,
             "values": {"busy_s": 0.5}},
        ]
        t.ingest(shipped)
        t.ingest(None)  # untraced result: no-op
        names = [e["name"] for e in t.events if e.get("ev") == "span"]
        assert names == ["point"]
        assert t.counters["worker"] == {"busy_s": 0.5}


class TestEventLog:
    def test_stream_has_meta_header_and_one_record_per_line(self, tmp_path):
        log = tmp_path / "t.jsonl"
        t = configure_tracer(log)
        with span("a", cat="phase"):
            pass
        t.finish()
        lines = log.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["ev"] == "meta"
        assert records[0]["format"] == TRACE_FORMAT
        assert [r["ev"] for r in records[1:]] == ["span"]

    def test_torn_trailing_line_is_skipped_on_load(self, tmp_path):
        log = tmp_path / "t.jsonl"
        t = configure_tracer(log)
        for name in ("a", "b"):
            with span(name, cat="phase"):
                pass
        t.finish()
        # Simulate a kill mid-append: a torn (truncated) final line.
        with open(log, "ab") as fh:
            fh.write(b'{"ev":"span","name":"torn","t0":1.2,"du')
        spans, _, meta = load_trace(log)
        assert [s["name"] for s in spans] == ["a", "b"]
        assert meta["format"] == TRACE_FORMAT

    def test_reset_clears_in_place(self, tmp_path):
        t = configure_tracer(tmp_path / "t.jsonl")
        with span("a"):
            pass
        reset_tracer()
        assert t.events == []
        assert t.counters == {}
        assert t.path is None
        assert not t.enabled
