"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import tiny_socket, xeon20mb


@pytest.fixture
def tiny():
    """A miniature 4-core socket (L1 512 B, L2 2 KiB, L3 16 KiB)."""
    return tiny_socket()


@pytest.fixture
def xeon():
    """The default (1/16-scaled) Xeon20MB socket."""
    return xeon20mb()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end measurement tests"
    )
