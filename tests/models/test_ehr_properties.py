"""Property-based tests of the EHR model (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.models import (
    effective_capacity_lines,
    expected_hit_rate,
    predicted_miss_rate,
    sum_f_squared,
)

pmfs = st.lists(
    st.floats(min_value=0.01, max_value=10.0),
    min_size=8,
    max_size=256,
).map(lambda ws: np.array(ws) / np.sum(ws))


@given(pmfs, st.integers(min_value=1, max_value=10_000))
@settings(max_examples=200, deadline=None)
def test_ehr_in_unit_interval(pmf, capacity):
    ehr = expected_hit_rate(capacity, pmf)
    assert 0.0 <= ehr <= 1.0
    assert predicted_miss_rate(capacity, pmf) == pytest.approx(1.0 - ehr)


@given(pmfs, st.integers(min_value=1, max_value=500))
@settings(max_examples=200, deadline=None)
def test_inversion_roundtrip_when_not_clipped(pmf, capacity):
    ehr_raw = capacity * sum_f_squared(pmf)
    assume(ehr_raw < 0.999)  # clipping destroys information by design
    mr = predicted_miss_rate(capacity, pmf)
    assert effective_capacity_lines(mr, pmf) == pytest.approx(capacity, rel=1e-9)


@given(pmfs)
@settings(max_examples=100, deadline=None)
def test_s2_bounds(pmf):
    """1/n <= sum f^2 <= max f; equality on the left iff uniform."""
    s2 = sum_f_squared(pmf)
    assert s2 >= 1.0 / len(pmf) - 1e-12
    assert s2 <= pmf.max() + 1e-12


@given(pmfs, st.integers(min_value=1, max_value=400), st.integers(min_value=1, max_value=400))
@settings(max_examples=100, deadline=None)
def test_ehr_monotone_in_capacity(pmf, c1, c2):
    lo, hi = sorted((c1, c2))
    assert expected_hit_rate(lo, pmf) <= expected_hit_rate(hi, pmf) + 1e-12
