"""Degradation curves, use-bracketing, alternative-machine prediction."""

import pytest

from repro.errors import MeasurementError
from repro.models import (
    AlternativeMachinePrediction,
    DegradationCurve,
    DegradationPoint,
    combine_slowdowns,
    curve_from_measurements,
)


def curve(points):
    return DegradationCurve(
        resource="capacity",
        points=[DegradationPoint(available=a, time_ns=t) for a, t in points],
    )


class TestCurve:
    def test_points_sorted_by_availability(self):
        c = curve([(20, 100.0), (5, 200.0), (12, 110.0)])
        assert [p.available for p in c.points] == [5, 12, 20]

    def test_baseline_is_most_generous_point(self):
        c = curve([(5, 200.0), (20, 100.0)])
        assert c.baseline_time_ns == 100.0

    def test_interpolated_slowdown(self):
        c = curve([(10, 150.0), (20, 100.0)])
        assert c.slowdown_at(15) == pytest.approx(1.25)

    def test_clamps_outside_range(self):
        c = curve([(10, 150.0), (20, 100.0)])
        assert c.slowdown_at(5) == pytest.approx(1.5)
        assert c.slowdown_at(100) == pytest.approx(1.0)

    def test_empty_curve_rejected(self):
        with pytest.raises(MeasurementError):
            DegradationCurve(resource="x", points=[])


class TestUseBounds:
    def test_bracketing(self):
        """Paper protocol: most-starved clean point = upper bound; the
        least-starved degraded point = lower bound."""
        c = curve([(2.5, 130.0), (5, 120.0), (7, 101.0), (12, 100.5), (20, 100.0)])
        lo, hi = c.use_bounds(threshold=0.05)
        assert lo == 5  # degraded at 5 and below
        assert hi == 7  # clean at 7 and above

    def test_never_degrades(self):
        c = curve([(5, 100.0), (20, 100.0)])
        lo, hi = c.use_bounds()
        assert lo == hi == 5  # uses at most the least we offered

    def test_always_degrades(self):
        c = curve([(5, 200.0), (20, 150.0), (40, 100.0)])
        lo, hi = c.use_bounds()
        # degraded even at 20 (150/100 > 1.05) -> crossing around the top
        assert hi == 40

    def test_threshold_sensitivity(self):
        c = curve([(5, 104.0), (20, 100.0)])
        assert c.use_bounds(threshold=0.05) == (5, 5)      # 4% ignored
        lo, hi = c.use_bounds(threshold=0.01)
        assert (lo, hi) == (5, 20)                          # 4% counted


class TestPrediction:
    def test_combination_is_multiplicative(self):
        assert combine_slowdowns(1.2, 1.5) == pytest.approx(1.8)

    def test_combination_clamps_speedups(self):
        assert combine_slowdowns(0.9, 1.5) == pytest.approx(1.5)

    def test_alternative_machine(self):
        cap = curve([(5, 130.0), (10, 110.0), (20, 100.0)])
        bw = DegradationCurve(
            resource="bandwidth",
            points=[
                DegradationPoint(available=8e9, time_ns=120.0),
                DegradationPoint(available=17e9, time_ns=100.0),
            ],
        )
        pred = AlternativeMachinePrediction(capacity_curve=cap, bandwidth_curve=bw)
        s = pred.predict(capacity_available=5, bandwidth_available=8e9)
        assert s == pytest.approx(1.3 * 1.2)

    def test_capacity_only_prediction(self):
        cap = curve([(5, 130.0), (20, 100.0)])
        pred = AlternativeMachinePrediction(capacity_curve=cap)
        assert pred.predict(5) == pytest.approx(1.3)


class TestConstructor:
    def test_from_measurements(self):
        c = curve_from_measurements("capacity", [20, 5], [100.0, 150.0], [0, 5])
        assert c.points[0].available == 5
        assert c.points[0].n_interference == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            curve_from_measurements("x", [1, 2], [1.0])
        with pytest.raises(MeasurementError):
            curve_from_measurements("x", [1, 2], [1.0, 2.0], [0])
