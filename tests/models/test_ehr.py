"""Eq. 4 (EHR) model and its inversion."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    EHRModel,
    check_assumptions,
    effective_capacity_lines,
    expected_hit_rate,
    predicted_miss_rate,
    sum_f_squared,
)
from repro.workloads import NormalDist, UniformDist


def uniform_pmf(n_lines):
    return np.full(n_lines, 1.0 / n_lines)


class TestSumFSquared:
    def test_uniform_closed_form(self):
        """Uniform over n lines: sum f^2 = 1/n."""
        assert sum_f_squared(uniform_pmf(100)) == pytest.approx(0.01)

    def test_concentration_increases_s2(self):
        n = 256
        uni = UniformDist().line_pmf(n * 16, 16)
        norm = NormalDist(8).line_pmf(n * 16, 16)
        assert sum_f_squared(norm) > sum_f_squared(uni)

    def test_rejects_unnormalised(self):
        with pytest.raises(ModelError, match="sums to"):
            sum_f_squared(np.array([0.2, 0.2]))

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            sum_f_squared(np.array([1.2, -0.2]))

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            sum_f_squared(np.array([]))


class TestEq4:
    def test_uniform_ehr_is_capacity_ratio(self):
        """EHR = C * (1/n): the paper's 'Cache capacity / Buffer size'."""
        pmf = uniform_pmf(500)
        assert expected_hit_rate(200, pmf) == pytest.approx(0.4)
        assert predicted_miss_rate(200, pmf) == pytest.approx(0.6)

    def test_clipped_at_one_when_buffer_fits(self):
        assert expected_hit_rate(10_000, uniform_pmf(100)) == 1.0

    def test_monotone_in_capacity(self):
        pmf = NormalDist(6).line_pmf(4096, 16)
        rates = [predicted_miss_rate(c, pmf) for c in (10, 50, 100, 200)]
        assert rates == sorted(rates, reverse=True)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ModelError):
            expected_hit_rate(0, uniform_pmf(10))


class TestInversion:
    def test_roundtrip_recovers_capacity(self):
        """inversion(miss_rate(C)) == C while EHR is not clipped — the
        measurement instrument of Section III-C3."""
        pmf = uniform_pmf(1000)
        for c in (100, 250, 500, 900):
            mr = predicted_miss_rate(c, pmf)
            assert effective_capacity_lines(mr, pmf) == pytest.approx(c)

    def test_rejects_out_of_range_miss_rate(self):
        with pytest.raises(ModelError):
            effective_capacity_lines(1.5, uniform_pmf(10))

    def test_monotone_in_miss_rate(self):
        pmf = uniform_pmf(100)
        caps = [effective_capacity_lines(m, pmf) for m in (0.2, 0.5, 0.8)]
        assert caps == sorted(caps, reverse=True)


class TestAssumptions:
    def test_zero_probability_line_rejected(self):
        pmf = np.array([0.5, 0.5, 0.0, 0.0])
        pmf = pmf / pmf.sum()
        with pytest.raises(ModelError, match="non-zero"):
            check_assumptions(2, pmf)

    def test_buffer_must_exceed_cache(self):
        with pytest.raises(ModelError, match="larger than the cache"):
            check_assumptions(200, uniform_pmf(100))

    def test_valid_case_passes(self):
        check_assumptions(50, uniform_pmf(100))


class TestEHRModelWrapper:
    def test_byte_conversions(self):
        pmf = uniform_pmf(1000)
        model = EHRModel(pmf, line_bytes=64)
        mr = model.miss_rate(cache_bytes=500 * 64)
        assert mr == pytest.approx(0.5)
        assert model.effective_capacity_bytes(mr) == pytest.approx(500 * 64)

    def test_check_delegates(self):
        model = EHRModel(uniform_pmf(100), line_bytes=64)
        with pytest.raises(ModelError):
            model.check(cache_bytes=100 * 64)
