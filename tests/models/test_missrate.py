"""Empirical miss-rate baselines (Hartstein power law, Hill & Smith)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    PowerLawMissModel,
    associativity_inflation,
    corrected_miss_rate,
)


class TestPowerLaw:
    def test_sqrt2_rule(self):
        """Doubling capacity with alpha=0.5 divides the miss rate by
        sqrt(2) — the rule the Hartstein paper is named after."""
        m = PowerLawMissModel(m0=0.4, c0_bytes=1e6, alpha=0.5)
        assert m.miss_rate(2e6) == pytest.approx(0.4 / np.sqrt(2))

    def test_clips_at_one(self):
        m = PowerLawMissModel(m0=0.9, c0_bytes=1e6, alpha=1.0)
        assert m.miss_rate(1e3) == 1.0
        assert m.miss_rate(0) == 1.0

    def test_fit_recovers_parameters(self):
        true = PowerLawMissModel(m0=0.3, c0_bytes=4e6, alpha=0.62)
        caps = np.array([1e6, 2e6, 4e6, 8e6, 16e6])
        rates = np.array([true.miss_rate(c) for c in caps])
        fitted = PowerLawMissModel.fit(caps, rates)
        assert fitted.alpha == pytest.approx(0.62, rel=0.05)
        for c in caps:
            assert fitted.miss_rate(c) == pytest.approx(true.miss_rate(c), rel=0.02)

    def test_fit_rejects_degenerate_input(self):
        with pytest.raises(ModelError):
            PowerLawMissModel.fit(np.array([1e6]), np.array([0.5]))
        with pytest.raises(ModelError):
            PowerLawMissModel.fit(np.array([1e6, -1]), np.array([0.5, 0.4]))

    def test_validation(self):
        with pytest.raises(ModelError):
            PowerLawMissModel(m0=0.0, c0_bytes=1e6)
        with pytest.raises(ModelError):
            PowerLawMissModel(m0=0.5, c0_bytes=-1)


class TestAssociativity:
    def test_monotone_decreasing_in_ways(self):
        vals = [associativity_inflation(w) for w in (1, 2, 4, 8, 16, 20)]
        assert vals == sorted(vals, reverse=True)

    def test_limits(self):
        assert associativity_inflation(1) == pytest.approx(1.33)
        assert associativity_inflation(256) == 1.0

    def test_interpolated_values_bracketed(self):
        v = associativity_inflation(12)
        assert associativity_inflation(16) < v < associativity_inflation(8)

    def test_rejects_non_positive(self):
        with pytest.raises(ModelError):
            associativity_inflation(0)

    def test_correction_clips(self):
        assert corrected_miss_rate(0.9, 1) == 1.0
        assert corrected_miss_rate(0.5, 20) == pytest.approx(0.5 * 1.012)
        with pytest.raises(ModelError):
            corrected_miss_rate(1.2, 8)
