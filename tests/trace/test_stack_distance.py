"""Mattson stack analysis: hand cases, oracle equivalence, properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheGeometry
from repro.errors import ModelError
from repro.mem import SetAssociativeCache
from repro.trace import COLD, ReuseProfile, reuse_distances


class TestReuseDistances:
    def test_hand_checked_sequence(self):
        #        a  b  c  a  b  b  d  a
        trace = [1, 2, 3, 1, 2, 2, 4, 1]
        d = reuse_distances(trace).tolist()
        # final a: distinct lines since its previous touch = {b, d} = 2
        assert d == [COLD, COLD, COLD, 2, 2, 0, COLD, 2]

    def test_all_cold(self):
        assert (reuse_distances([1, 2, 3]) == COLD).all()

    def test_repeated_single_line(self):
        d = reuse_distances([7, 7, 7, 7]).tolist()
        assert d == [COLD, 0, 0, 0]

    def test_accepts_ndarray(self):
        d = reuse_distances(np.array([1, 1]))
        assert d.tolist() == [COLD, 0]


class TestReuseProfile:
    def test_miss_rate_matches_fully_associative_cache(self):
        """The Mattson inclusion property: stack-derived miss rates must
        equal an exact fully-associative LRU simulation at every
        capacity."""
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 200, size=4000).tolist()
        profile = ReuseProfile.from_trace(trace)
        for cap_lines in (16, 64, 128, 256):
            # Fully associative: 1 set with cap_lines ways.
            geom = CacheGeometry(cap_lines * 64, 64, cap_lines)
            cache = SetAssociativeCache(geom)
            for a in trace:
                cache.access(a)
            expected = cache.stats.miss_rate
            got = profile.miss_rate_at(cap_lines, include_cold=True)
            assert got == pytest.approx(expected, abs=1e-12)

    def test_curve_is_monotone_decreasing(self):
        rng = np.random.default_rng(4)
        profile = ReuseProfile.from_trace(rng.integers(0, 500, size=5000))
        curve = profile.miss_rate_curve([10, 50, 100, 400, 800])
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_uniform_trace_matches_eq4(self):
        """For a long uniform trace over n lines, the steady-state miss
        rate at capacity C is ~1 - C/n — Eq. 4's prediction."""
        rng = np.random.default_rng(5)
        n = 300
        profile = ReuseProfile.from_trace(rng.integers(0, n, size=60_000))
        for c in (60, 150, 240):
            assert profile.miss_rate_at(c, include_cold=False) == pytest.approx(
                1 - c / n, abs=0.03
            )

    def test_cold_misses_equal_distinct_lines(self):
        trace = [1, 2, 1, 3, 2, 9]
        profile = ReuseProfile.from_trace(trace)
        assert profile.cold_misses == profile.distinct_lines == 4

    def test_working_set_summary(self):
        # 90% of reuses concentrated in 4 hot lines + occasional cold sweep.
        rng = np.random.default_rng(6)
        hot = rng.integers(0, 4, size=9000)
        cold = np.arange(10_000, 11_000)
        trace = np.concatenate([hot, cold])
        profile = ReuseProfile.from_trace(trace)
        assert profile.working_set_lines(coverage=0.9) <= 8

    def test_validation(self):
        profile = ReuseProfile.from_trace([1, 1])
        with pytest.raises(ModelError):
            profile.miss_rate_at(0)
        with pytest.raises(ModelError):
            profile.working_set_lines(coverage=0.0)


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=120, deadline=None)
def test_property_stack_equals_cache(trace, cap_lines):
    """Hypothesis: stack analysis == fully-associative LRU, always."""
    profile = ReuseProfile.from_trace(trace)
    geom = CacheGeometry(cap_lines * 64, 64, cap_lines)
    cache = SetAssociativeCache(geom)
    for a in trace:
        cache.access(a)
    assert profile.miss_rate_at(cap_lines) == pytest.approx(
        cache.stats.miss_rate, abs=1e-12
    )


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_distance_counts_are_consistent(trace):
    profile = ReuseProfile.from_trace(trace)
    assert profile.cold_misses == len(set(trace))
    assert profile.cold_misses + int(profile.counts.sum()) == len(trace)
