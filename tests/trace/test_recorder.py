"""Trace recording from workloads."""

import pytest

from repro.config import tiny_socket, xeon20mb
from repro.errors import SimulationError
from repro.trace import ReuseProfile, record_trace
from repro.units import KiB, MiB
from repro.workloads import BWThr, CSThr, ProbabilisticBenchmark, UniformDist


class TestRecorder:
    def test_records_requested_length(self, tiny):
        trace = record_trace(CSThr(buffer_bytes=4 * KiB), 1000, tiny)
        assert len(trace) == 1000
        assert trace.thread_name == "CSThr"

    def test_write_fraction(self, tiny):
        rmw = record_trace(CSThr(buffer_bytes=4 * KiB), 500, tiny)
        assert rmw.write_fraction == 1.0
        ro = record_trace(
            ProbabilisticBenchmark(UniformDist(), 32 * KiB), 500, tiny
        )
        assert ro.write_fraction == 0.0

    def test_deterministic_under_seed(self, tiny):
        a = record_trace(CSThr(buffer_bytes=4 * KiB), 300, tiny, seed=5)
        b = record_trace(CSThr(buffer_bytes=4 * KiB), 300, tiny, seed=5)
        assert (a.lines == b.lines).all()

    def test_rejects_zero_length(self, tiny):
        with pytest.raises(SimulationError):
            record_trace(CSThr(buffer_bytes=4 * KiB), 0, tiny)

    def test_finite_thread_may_end_early(self, tiny):
        probe = ProbabilisticBenchmark(UniformDist(), 32 * KiB, n_accesses=100)
        trace = record_trace(probe, 10_000, tiny)
        assert len(trace) == 100


class TestTraceAnalysisIntegration:
    def test_csthr_trace_working_set_is_its_buffer(self, xeon):
        cs = CSThr()  # 4 MB paper -> 4096 sim lines
        trace = record_trace(cs, 30_000, xeon)
        assert trace.distinct_lines() <= cs.footprint_lines()
        assert trace.distinct_lines() > 0.9 * cs.footprint_lines()

    def test_bwthr_trace_is_streaming(self, xeon):
        """BWThr's reuse distances are ~its whole footprint: stack
        analysis sees it as a pure streaming workload (no capacity it
        could productively use below its footprint)."""
        bw = BWThr(n_buffers=4)
        trace = record_trace(bw, 12_000, xeon)
        profile = ReuseProfile.from_trace(trace.lines)
        footprint = bw.footprint_lines()
        # Miss rate stays ~1 until capacity approaches the footprint.
        assert profile.miss_rate_at(footprint // 2, include_cold=False) > 0.95

    def test_probe_curve_matches_eq4(self, xeon):
        """Cross-instrument check: the stack-distance curve of a uniform
        probe equals Eq. 4's prediction at every capacity. The trace must
        be long relative to the buffer (many touches per line) or the
        warm-access sample is biased toward short distances."""
        probe = ProbabilisticBenchmark(UniformDist(), 4 * MiB)
        trace = record_trace(probe, 80_000, xeon)  # ~20 touches/line
        profile = ReuseProfile.from_trace(trace.lines)
        n_lines = probe.buffer.n_lines
        for frac in (0.25, 0.5, 0.75):
            cap = int(n_lines * frac)
            assert profile.miss_rate_at(cap, include_cold=False) == pytest.approx(
                1 - frac, abs=0.03
            )
