"""SpMV/CG proxy."""

import pytest

from repro.apps import SpMVProxy
from repro.cluster import Distance, ProcessMapping
from repro.config import xeon20mb_cluster
from repro.engine import SocketSimulator
from repro.errors import ConfigError
from repro.units import MiB


class TestStructure:
    def test_matrix_dominates_working_set(self):
        app = SpMVProxy(rows=100_000, nnz_per_row=27)
        specs = {s.label: s.paper_bytes for s in app.buffer_specs()}
        assert specs["matrix"] > 10 * specs["vectors"]
        assert app.working_set_paper_bytes() > 30 * MiB  # L3-hopeless

    def test_comm_scales_with_rows(self):
        cluster = xeon20mb_cluster(n_nodes=8)
        mapping = ProcessMapping(cluster, n_ranks=16, procs_per_socket=2)
        small = sum(SpMVProxy(rows=50_000, mapping=mapping).comm_bytes_by_distance().values())
        large = sum(SpMVProxy(rows=200_000, mapping=mapping).comm_bytes_by_distance().values())
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpMVProxy(rows=0)
        with pytest.raises(ConfigError):
            SpMVProxy(nnz_per_row=-1)


@pytest.mark.slow
class TestBehaviour:
    def test_spmv_is_bandwidth_bound(self, xeon):
        """The CG rank must be far more sensitive to bandwidth than to
        storage interference — the opposite signature from MCB."""
        from repro.workloads import BWThr, CSThr

        def run(intf):
            sim = SocketSimulator(xeon, seed=4)
            sim.add_thread(SpMVProxy(rows=150_000, n_iterations=2), main=True)
            for t in intf:
                sim.add_thread(t)
            return sim.run_to_completion().makespan_ns

        base = run([])
        with_cs = run([CSThr(name=f"C{i}") for i in range(2)])
        with_bw = run([BWThr(name=f"B{i}") for i in range(2)])
        assert with_bw / base > 1.03
        assert with_bw > with_cs
