"""RankApp phase framework."""

import numpy as np
import pytest

from repro.apps import BufferSpec, CommEnv, RandomPhase, RankApp, StreamPhase
from repro.cluster import CommModel, Distance, NoiseModel
from repro.config import NetworkConfig, tiny_socket
from repro.engine import ThreadContext
from repro.errors import ConfigError
from repro.mem import AddressSpace
from repro.units import KiB


class TwoPhaseApp(RankApp):
    """1 KiB stream + 64 random accesses over a second buffer."""

    def __init__(self, comm=None, remote_bytes=0, local_bytes=0, **kw):
        super().__init__(comm_env=comm, **kw)
        self._remote = remote_bytes
        self._local = local_bytes

    def buffer_specs(self):
        return [
            BufferSpec("stream", 1 * KiB, elem_bytes=8),
            BufferSpec("table", 2 * KiB, elem_bytes=4),
        ]

    def iteration_phases(self):
        return [
            StreamPhase("stream", passes=2.0, ops_per_access=3),
            RandomPhase("table", n_accesses=64, ops_per_access=5, is_write=True),
        ]

    def comm_bytes_by_distance(self):
        out = {}
        if self._local:
            out[Distance.SOCKET] = self._local
        if self._remote:
            out[Distance.REMOTE] = self._remote
        return out


def ctx_for(socket=None, seed=0):
    socket = socket or tiny_socket()
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=64),
        rng=np.random.default_rng(seed),
        core_id=0,
    )


def comm_env():
    return CommEnv(
        comm_model=CommModel.for_network(NetworkConfig()),
        noise=NoiseModel(sigma=0.0),
        n_ranks=8,
    )


class TestAllocationAndPhases:
    def test_buffers_allocated_by_label(self):
        app = TwoPhaseApp()
        app.start(ctx_for())
        assert set(app.buffers) == {"stream", "table"}
        assert app.buffers["stream"].size_bytes == 1 * KiB

    def test_working_set_sums_specs(self):
        assert TwoPhaseApp().working_set_paper_bytes() == 3 * KiB

    def test_iteration_chunk_volume(self):
        app = TwoPhaseApp(n_iterations=2)
        app.start(ctx_for())
        total = sum(len(c) for c in app.chunks())
        stream_lines = app.buffers["stream"].n_lines
        per_iter = 2 * stream_lines + 64
        assert total == 2 * per_iter

    def test_stream_phase_sequential_lines(self):
        app = TwoPhaseApp()
        app.start(ctx_for())
        first = next(iter(app.chunks()))
        diffs = {b - a for a, b in zip(first.lines, first.lines[1:])}
        assert diffs <= {1, 1 - app.buffers["stream"].n_lines}

    def test_random_phase_not_prefetchable_and_in_range(self):
        app = TwoPhaseApp()
        app.start(ctx_for())
        chunks = list(app.chunks())
        rand = [c for c in chunks if not c.prefetchable]
        assert rand, "random phase must emit non-prefetchable chunks"
        buf = app.buffers["table"]
        for c in rand:
            assert all(
                buf.base_line <= a < buf.base_line + buf.n_lines for a in c.lines
            )

    def test_unknown_buffer_reference_raises(self):
        class Broken(TwoPhaseApp):
            def iteration_phases(self):
                return [StreamPhase("nope")]

        app = Broken()
        app.start(ctx_for())
        with pytest.raises(ConfigError, match="unknown buffer"):
            list(app.chunks())

    def test_unknown_phase_type_raises(self):
        class Broken(TwoPhaseApp):
            def iteration_phases(self):
                return ["not-a-phase"]

        app = Broken()
        app.start(ctx_for())
        with pytest.raises(ConfigError, match="unknown phase"):
            list(app.chunks())

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            TwoPhaseApp(n_iterations=0)


class TestCommunication:
    def test_no_comm_without_env(self):
        app = TwoPhaseApp(remote_bytes=4096)  # comm declared, env missing
        app.start(ctx_for())
        assert all(c.extra_ns == 0.0 for c in app.chunks())

    def test_remote_comm_charges_wire_time(self):
        app = TwoPhaseApp(comm=comm_env(), remote_bytes=64 * KiB, n_iterations=1)
        app.start(ctx_for())
        extras = [c.extra_ns for c in app.chunks()]
        assert sum(extras) > 0
        expected = comm_env().comm_model.p2p_ns(64 * KiB, Distance.REMOTE)
        assert sum(extras) == pytest.approx(expected, rel=0.01)

    def test_remote_staging_rotates_buffers(self):
        app = TwoPhaseApp(comm=comm_env(), remote_bytes=16 * KiB, n_iterations=2)
        app.start(ctx_for())
        assert len(app._remote_staging) > 1
        chunks = list(app.chunks())
        staged = [c for c in chunks if c.stream_id == 0x7E50]
        bufs = {min(c.lines) // 1000 for c in staged}  # coarse grouping
        assert len(staged) >= 2

    def test_local_comm_uses_single_resident_buffer(self):
        app = TwoPhaseApp(comm=comm_env(), local_bytes=8 * KiB)
        app.start(ctx_for())
        assert app._local_staging is not None
        assert app._remote_staging == []

    def test_pure_wire_comm_still_charged(self):
        """Tiny messages below line granularity must still cost time."""

        class WireOnly(TwoPhaseApp):
            def comm_bytes_by_distance(self):
                return {Distance.REMOTE: 16}

        # 16 bytes scale to < 1 line; staging allocation still happens at
        # >= 1 line, so the time is attached to the staging chunk.
        app = WireOnly(comm=comm_env())
        app.start(ctx_for())
        assert sum(c.extra_ns for c in app.chunks()) > 0
