"""MCB and Lulesh proxies: structure matches the paper's characterisation."""

import numpy as np
import pytest

from repro.apps import LuleshProxy, MCBProxy
from repro.cluster import Distance, ProcessMapping
from repro.config import xeon20mb, xeon20mb_cluster
from repro.engine import SocketSimulator, ThreadContext
from repro.errors import ConfigError
from repro.mem import AddressSpace
from repro.units import MiB


@pytest.fixture
def cluster():
    return xeon20mb_cluster(n_nodes=32)


def ctx_for(socket, seed=0):
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=socket.line_bytes),
        rng=np.random.default_rng(seed),
        core_id=0,
    )


class TestMCBStructure:
    def test_hot_working_set_in_paper_bracket(self):
        """Fig. 10: MCB uses ~4-7 MB per process; tally + xs must land
        inside that bracket."""
        mcb = MCBProxy(n_particles=20_000)
        tally_xs = sum(
            s.paper_bytes for s in mcb.buffer_specs() if s.label in ("tally", "xs")
        )
        assert 4 * MiB <= tally_xs <= 7 * MiB

    def test_fixed_structures_census_independent(self):
        small = {s.label: s.paper_bytes for s in MCBProxy(n_particles=20_000).buffer_specs()}
        large = {s.label: s.paper_bytes for s in MCBProxy(n_particles=260_000).buffer_specs()}
        assert small["tally"] == large["tally"]
        assert small["xs"] == large["xs"]
        assert large["particles"] > small["particles"]

    def test_comm_saturates_at_90k(self, cluster):
        """Fig. 9 bottom-right: communication stops growing past ~90k."""
        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=1)
        def total_comm(n):
            m = MCBProxy(n_particles=n, mapping=mapping)
            return sum(m.comm_bytes_by_distance().values())
        assert total_comm(40_000) > total_comm(20_000)
        assert total_comm(260_000) == total_comm(90_000)

    def test_remote_fraction_depends_on_mapping(self, cluster):
        def remote_share(p):
            mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=p)
            comm = MCBProxy(n_particles=20_000, mapping=mapping).comm_bytes_by_distance()
            total = sum(comm.values())
            return comm.get(Distance.REMOTE, 0) / total
        assert remote_share(1) == pytest.approx(1.0)
        assert remote_share(4) == pytest.approx(0.25, abs=0.02)

    def test_no_mapping_means_no_comm(self):
        assert MCBProxy(n_particles=20_000).comm_bytes_by_distance() == {}

    def test_validation(self):
        with pytest.raises(ConfigError):
            MCBProxy(n_particles=0)
        with pytest.raises(ConfigError):
            MCBProxy(n_particles=10, n_ranks=24)


class TestLuleshStructure:
    def test_working_set_calibration(self):
        """Fig. 11/12 brackets: 22^3 -> ~3.5 MB; 36^3 -> >15 MB."""
        ws22 = LuleshProxy(edge=22).working_set_paper_bytes()
        ws36 = LuleshProxy(edge=36).working_set_paper_bytes()
        assert 3 * MiB <= ws22 <= 7 * MiB
        assert ws36 >= 15 * MiB

    def test_comm_scales_with_face_area(self, cluster):
        mapping = ProcessMapping(cluster, n_ranks=64, procs_per_socket=1)
        def total_comm(edge):
            l = LuleshProxy(edge=edge, mapping=mapping)
            return sum(l.comm_bytes_by_distance().values())
        ratio = total_comm(36) / total_comm(22)
        assert ratio == pytest.approx((37 / 23) ** 2, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LuleshProxy(edge=2)

    def test_describe_mentions_working_set(self):
        assert "MB/rank" in LuleshProxy(edge=22).describe()


@pytest.mark.slow
class TestEndToEnd:
    def test_mcb_runs_on_socket(self, xeon):
        sim = SocketSimulator(xeon, seed=1)
        core = sim.add_thread(MCBProxy(n_particles=20_000, n_iterations=1), main=True)
        r = sim.run_to_completion()
        assert r.makespan_ns > 0
        assert r.counters_of(core).accesses > 1000

    def test_lulesh_overflows_under_storage_interference(self, xeon):
        """Fig. 11: 36^3 (15.3 MB) fits the 20 MB L3 alone but 'overflows
        the L3 with any amount of storage interference', while 22^3
        (3.5 MB) shrugs off 3 CSThrs (7 MB still available)."""
        from repro.workloads import CSThr

        def slowdown(edge):
            times = []
            for k in (0, 3):
                sim = SocketSimulator(xeon, seed=2)
                sim.add_thread(LuleshProxy(edge=edge, n_iterations=3), main=True)
                for i in range(k):
                    sim.add_thread(CSThr(name=f"CS{i}"))
                times.append(sim.run_to_completion().makespan_ns)
            return times[1] / times[0]

        assert slowdown(22) < 1.03
        assert slowdown(36) > 1.06
