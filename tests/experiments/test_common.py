"""Experiment-mode plumbing and grid definitions."""

import pytest

from repro.errors import ConfigError
from repro.experiments import common


class TestModeResolution:
    def test_default_is_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_MODE", raising=False)
        assert common.resolve_mode(None) == common.SMOKE

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "paper")
        assert common.resolve_mode(None) == common.PAPER

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODE", "paper")
        assert common.resolve_mode("full") == common.FULL

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            common.resolve_mode("turbo")

    def test_pick(self):
        assert common.pick("smoke", 1, 2, 3) == 1
        assert common.pick("full", 1, 2, 3) == 3


class TestGrids:
    def test_full_grid_is_papers_660_configs(self):
        """10 distributions x 3 intensities x 22 buffer sizes = 660."""
        n = (
            len(common.distribution_names("full"))
            * len(common.ops_per_load("full"))
            * len(common.probe_buffer_sizes_mb("full"))
        )
        assert n == 660

    def test_buffer_sizes_cover_30_to_74(self):
        for mode in ("smoke", "paper", "full"):
            sizes = common.probe_buffer_sizes_mb(mode)
            assert sizes[0] in (30, 32) and sizes[-1] == 74

    def test_smoke_grids_are_smaller(self):
        assert len(common.probe_buffer_sizes_mb("smoke")) < len(
            common.probe_buffer_sizes_mb("paper")
        )
        assert len(common.distribution_names("smoke")) < 10

    def test_mcb_mappings_match_paper(self):
        assert common.mcb_mappings("paper") == [1, 2, 3, 4, 6]

    def test_lulesh_edges_bracket(self):
        for mode in ("smoke", "paper", "full"):
            edges = common.lulesh_edges(mode)
            assert edges[0] == 22 and edges[-1] == 36

    def test_env_windows_grow_with_mode(self):
        smoke = common.default_env("smoke")
        full = common.default_env("full")
        assert smoke.measure_accesses < full.measure_accesses
        assert smoke.l3_paper_bytes == 20 * 1024 * 1024
