"""The numa driver's acceptance behaviours (smoke geometry)."""

import pytest

from repro.analysis import ExperimentRecord
from repro.experiments import run_numa
from repro.experiments import numa as numa_mod


@pytest.mark.slow
class TestNumaDriver:
    def test_acceptance_asymmetries(self):
        rec = run_numa(mode="smoke")
        assert isinstance(rec, ExperimentRecord)
        d = rec.data

        # STREAM-style placement asymmetry: remote-homed pages cost
        # bandwidth and latency.
        assert 0.0 < d["stream_remote_ratio"] < 1.0
        assert d["chase_remote_extra_ns"] > 0.0
        # Remote fills pay at least the configured penalty apiece.
        stats = d["remote_fill_stats"]
        assert stats["remote_fills"] > 0
        assert stats["ns_per_remote_fill"] >= rec.params["remote_penalty_ns"]
        assert stats["remote_fraction"] == pytest.approx(1.0)

        # Acceptance: local BWThrs degrade the first-touch app strictly
        # more than the same BWThrs pinned to the other socket.
        for k, row in d["interference_slowdown"].items():
            assert row["local"] > row["remote"], f"k={k}"
            assert row["isolation_gain"] > 1.0

        # Spanning ranks: the spread mapping keeps traffic local under
        # first-touch, so remote fractions stay negligible.
        for row in d["rank_spanning"].values():
            assert row["remote_fraction"] < 0.05

        assert numa_mod.render(rec)
