"""App-sweep helpers (mapping/input sweeps, normalisation, JSON form)."""

import pytest

from repro.apps import MCBProxy
from repro.config import xeon20mb_cluster
from repro.errors import MeasurementError
from repro.experiments import appsweeps


@pytest.fixture
def cluster():
    return xeon20mb_cluster(n_nodes=32)


def builder(n_particles, rank, mapping, env):
    return MCBProxy(
        n_particles=int(n_particles), n_ranks=24, rank=rank,
        mapping=mapping, comm_env=env, n_iterations=1,
    )


class TestHelpers:
    def test_slowdown_series_normalises(self):
        sweep = {"cs": {0: 100.0, 2: 130.0}, "bw": {0: 100.0, 1: 110.0}}
        cs = appsweeps.slowdown_series(sweep, "cs")
        assert cs == {0: pytest.approx(1.0), 2: pytest.approx(1.3)}
        bw = appsweeps.slowdown_series(sweep, "bw")
        assert bw[1] == pytest.approx(1.1)

    def test_slowdown_series_empty(self):
        assert appsweeps.slowdown_series({"cs": {0: 1.0}, "bw": {}}, "bw") == {}

    def test_jsonable_stringifies_keys(self):
        sweeps = {1: {"cs": {0: 1.5}}}
        out = appsweeps.jsonable(sweeps)
        assert out == {"1": {"cs": {"0": 1.5}}}


@pytest.mark.slow
class TestSweeps:
    def test_interference_levels_that_do_not_fit_are_skipped(self, cluster):
        """Paper: 'not all combinations of mapping and interference can
        be executed' — p=6 leaves 2 free cores, so k>2 is dropped."""
        from repro.cluster import ProcessMapping

        mapping = ProcessMapping(cluster, n_ranks=24, procs_per_socket=6)

        def build(rank, env):
            return builder(20_000, rank, mapping, env)

        sweep = appsweeps.interference_sweep(
            cluster, mapping, build, cs_ks=[0, 2, 5], bw_ks=[0, 2], seed=1
        )
        assert set(sweep["cs"]) == {0, 2}
        assert set(sweep["bw"]) == {0, 2}

    def test_mapping_sweeps_skip_uneven_mappings(self, cluster):
        out = appsweeps.mapping_sweeps(
            cluster, 24, mappings=[1, 5], builder=builder, input_value=20_000,
            cs_ks=[0], bw_ks=[], seed=1,
        )
        assert 1 in out and 5 not in out  # 24 % 5 != 0

    def test_input_sweeps_keyed_by_value(self, cluster):
        out = appsweeps.input_sweeps(
            cluster, 24, inputs=[20_000], builder=builder,
            cs_ks=[0], bw_ks=[], seed=1,
        )
        assert set(out) == {20_000}
        assert 0 in out[20_000]["cs"]
