"""Experiment render functions on synthetic records (no simulation)."""

from repro.analysis import ExperimentRecord
from repro.experiments import calibration, fig5, fig6, fig7_fig8, fig9, fig10_fig12, fig11


def test_fig5_render():
    rec = ExperimentRecord(
        experiment_id="fig5", title="t",
        data={
            "sizes_mb": [30, 74],
            "mean_abs_error": [0.08, 0.05],
            "std_abs_error": [0.03, 0.02],
        },
    )
    out = fig5.render(rec)
    assert "sigma" in out


def test_fig6_render():
    rec = ExperimentRecord(
        experiment_id="fig6", title="t",
        data={
            "sizes_mb": [30, 74],
            "panels": {"1": {"0": {"mean": [19.0, 20.0], "std": [0.5, 0.2]}}},
            "capacity_ladder_mb": {"0": 19.5},
        },
    )
    out = fig6.render(rec)
    assert "eff. capacity" in out and "19" in out


def test_fig7_fig8_render():
    rec = ExperimentRecord(
        experiment_id="fig7_fig8", title="t",
        data={
            "fig7": {
                "csthrs": [0, 1],
                "bwthr_bandwidth_GBps": [2.5, 2.5],
                "bwthr_time_per_access_ns": [25.0, 25.1],
                "bwthr_l3_miss_rate": [0.9, 0.9],
            },
            "fig8": {
                "bwthrs": [0, 1],
                "csthr_bandwidth_GBps": [0.0, 0.1],
                "csthr_time_per_access_ns": [15.0, 15.2],
                "csthr_l3_miss_rate": [0.0, 0.01],
            },
        },
    )
    out = fig7_fig8.render(rec)
    assert "Fig. 7" in out and "Fig. 8" in out


def test_fig9_and_fig11_render():
    data = {
        "top_times_ns": {"1": {"cs": {"0": 100.0, "2": 120.0}, "bw": {"0": 100.0}}},
        "bottom_times_ns": {"20000": {"cs": {"0": 100.0, "5": 130.0}, "bw": {}}},
    }
    out9 = fig9.render(ExperimentRecord(experiment_id="fig9", title="t", data=data))
    assert "slowdown" in out9 and "1.200" in out9
    out11 = fig11.render(ExperimentRecord(experiment_id="fig11", title="t", data=data))
    assert "slowdown" in out11


def test_fig10_12_render():
    rec = ExperimentRecord(
        experiment_id="fig10", title="t",
        data={
            "use_tables": {
                "20000": {
                    "1": {
                        "capacity_mb": {"lower": 5.0, "upper": 8.0},
                        "bandwidth_GBps": {"lower": 11.0, "upper": 13.0},
                    },
                    "4": {"capacity_mb": {"lower": 4.0, "upper": 5.0}},
                }
            }
        },
    )
    out = fig10_fig12.render(rec)
    assert "cap>=" in out and "5" in out


def test_calibration_render():
    rec = ExperimentRecord(
        experiment_id="calibration", title="t",
        data={
            "table1": "Xeon20MB: ...",
            "stream_peak_GBps": 16.0,
            "bwthr_unit_GBps": 2.6,
            "threads_to_saturate": 7,
            "two_bwthr_steal_fraction": 0.32,
            "saturation_GBps": {"1": 2.6},
            "capacity_ladder_mb": {"0": 19.0},
            "paper_capacity_ladder_mb": {"0": 20.0},
            "paper_bw_ladder_GBps": {"0": 17.0},
        },
    )
    out = calibration.render(rec)
    assert "STREAM" in out and "Capacity ladder" in out
