"""Experiment drivers produce well-formed, paper-shaped records.

The heavier grids are shrunk via monkeypatching the grid definitions so
the whole file stays test-suite friendly; the real smoke/paper grids run
in the benchmark harness.
"""

import pytest

from repro.analysis import ExperimentRecord
from repro.experiments import (
    ablations,
    common,
    run_calibration,
    run_fig5,
    run_fig6,
    run_fig7_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)
from repro.experiments import fig5 as fig5_mod
from repro.experiments import fig6 as fig6_mod


@pytest.fixture
def micro(monkeypatch):
    """Shrink every grid to near-minimum."""
    monkeypatch.setattr(common, "probe_buffer_sizes_mb", lambda mode=None: [30, 74])
    monkeypatch.setattr(common, "distribution_names", lambda mode=None: ["Uni"])
    monkeypatch.setattr(common, "ops_per_load", lambda mode=None: [1])
    monkeypatch.setattr(common, "csthr_counts", lambda mode=None: [0, 4])
    monkeypatch.setattr(common, "bwthr_counts", lambda mode=None: [0, 2])
    monkeypatch.setattr(common, "mcb_particle_counts", lambda mode=None: [20_000])
    monkeypatch.setattr(common, "mcb_mappings", lambda mode=None: [1])
    monkeypatch.setattr(common, "lulesh_edges", lambda mode=None: [36])
    monkeypatch.setattr(common, "lulesh_mappings", lambda mode=None: [1])

    def tiny_env(mode=None, seed=0):
        return common.ExperimentEnv(
            socket=common.xeon20mb(),
            mode=common.resolve_mode(mode),
            warmup_accesses=45_000,
            measure_accesses=15_000,
            seed=seed,
        )

    monkeypatch.setattr(common, "default_env", tiny_env)
    return monkeypatch


@pytest.mark.slow
class TestFig5(object):
    def test_record_shape_and_error_band(self, micro):
        rec = run_fig5()
        assert isinstance(rec, ExperimentRecord)
        assert rec.data["sizes_mb"] == [30, 74]
        assert len(rec.data["mean_abs_error"]) == 2
        # Paper headline: mean error under 10% (Uni probe, micro windows).
        assert max(rec.data["mean_abs_error"]) < 0.12
        assert fig5_mod.render(rec)  # renders without error


@pytest.mark.slow
class TestFig6(object):
    def test_capacity_ladder_decreases(self, micro):
        rec = run_fig6()
        ladder = rec.data["capacity_ladder_mb"]
        assert ladder["4"] < ladder["0"]
        # k=0 must be within 30% of the nominal 20 MB.
        assert ladder["0"] == pytest.approx(20.0, rel=0.3)
        assert fig6_mod.render(rec)


@pytest.mark.slow
class TestFig7Fig8(object):
    def test_orthogonality_headline(self, micro):
        rec = run_fig7_fig8()
        assert rec.data["bwthr_flat"]
        assert rec.data["capacity_neutral_bwthrs"] >= 1
        assert rec.data["csthr_solo_bandwidth_GBps"] < 0.3


@pytest.mark.slow
class TestCalibration(object):
    def test_paper_anchors(self, micro):
        rec = run_calibration()
        assert rec.data["bwthr_unit_GBps"] == pytest.approx(2.8, rel=0.25)
        assert rec.data["stream_peak_GBps"] == pytest.approx(17.0, rel=0.25)
        assert 5 <= rec.data["threads_to_saturate"] <= 9


@pytest.mark.slow
class TestAppFigures(object):
    def test_fig9_records_sweeps(self, micro):
        rec = run_fig9()
        top = rec.data["top_times_ns"]
        assert "1" in top
        assert set(top["1"]) == {"cs", "bw"}
        base = top["1"]["cs"]["0"]
        assert all(t >= base * 0.95 for t in top["1"]["cs"].values())

    def test_fig11_large_domain_degrades(self, micro):
        rec = run_fig11()
        bottom = rec.data["bottom_times_ns"]["36"]
        assert bottom["cs"]["4"] > bottom["cs"]["0"] * 1.02

    def test_fig10_use_table_shape(self, micro):
        rec = run_fig10()
        table = rec.data["use_tables"]["20000"]
        entry = table["1"]
        assert entry["capacity_mb"]["lower"] <= entry["capacity_mb"]["upper"]
        assert "bandwidth_GBps" in entry


@pytest.mark.slow
class TestAblations(object):
    def test_prefetch_ablation_shows_benefit(self, micro):
        rec = ablations.run_prefetch_ablation()
        assert rec.data["bwthr_unit_GBps"]["0"] < rec.data["bwthr_unit_GBps"]["6"]

    def test_replacement_ablation_close_to_eq4(self, micro):
        rec = ablations.run_replacement_ablation()
        lru = rec.data["miss_rate"]["lru"]
        assert lru == pytest.approx(rec.data["eq4_prediction"], abs=0.05)

    def test_bwthr_capacity_ablation_monotone(self, micro):
        rec = ablations.run_bwthr_capacity_ablation()
        occ = rec.data["occupancy"]
        assert occ["5"]["csthr_l3_fraction"] <= occ["1"]["csthr_l3_fraction"]
