"""TimingConfig / SocketConfig / NodeConfig / ClusterConfig validation."""

import pytest

from repro.config import (
    CacheGeometry,
    ClusterConfig,
    NetworkConfig,
    NodeConfig,
    PrefetchConfig,
    SocketConfig,
    TimingConfig,
    xeon20mb,
)
from repro.errors import ConfigError
from repro.units import GBps, KiB, MiB


class TestTimingConfig:
    def test_defaults_are_monotone(self):
        t = TimingConfig()
        assert t.l1_hit_ns <= t.l2_hit_ns <= t.l3_hit_ns <= t.dram_latency_ns

    def test_rejects_non_monotone_ladder(self):
        with pytest.raises(ConfigError, match="monotone"):
            TimingConfig(l1_hit_ns=10.0, l2_hit_ns=5.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            TimingConfig(l3_hit_ns=-1.0)

    def test_rejects_mlp_below_one(self):
        with pytest.raises(ConfigError, match="mlp"):
            TimingConfig(mlp=0.5)


class TestPrefetchConfig:
    def test_defaults_valid(self):
        p = PrefetchConfig()
        assert p.enabled and p.degree > 0

    def test_rejects_bad_degree(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(degree=-1)

    def test_rejects_zero_detect(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(detect_after=0)


class TestSocketConfig:
    def test_line_size_must_match_across_levels(self):
        with pytest.raises(ConfigError, match="line size"):
            SocketConfig(
                n_cores=4,
                l1=CacheGeometry(2 * KiB, 32, 2),
                l2=CacheGeometry(8 * KiB, 64, 4),
                l3=CacheGeometry(64 * KiB, 64, 4),
                dram_bandwidth_Bps=GBps(1),
            )

    def test_capacities_must_be_monotone(self):
        with pytest.raises(ConfigError, match="monotone"):
            SocketConfig(
                n_cores=4,
                l1=CacheGeometry(64 * KiB, 64, 4),
                l2=CacheGeometry(8 * KiB, 64, 4),
                l3=CacheGeometry(64 * KiB, 64, 4),
                dram_bandwidth_Bps=GBps(1),
            )

    def test_scaled_and_unscaled_roundtrip(self):
        s = xeon20mb(scale=16)
        assert s.scale == 16
        assert s.unscaled_bytes(s.l3.capacity_bytes) == 20 * MiB
        assert s.scaled_bytes(20 * MiB) == s.l3.capacity_bytes

    def test_scaled_bytes_rejects_too_small(self):
        s = xeon20mb(scale=16)
        with pytest.raises(ConfigError):
            s.scaled_bytes(8)

    def test_compound_scaling(self):
        s = xeon20mb(scale=1).scaled(4).scaled(4)
        assert s.scale == 16
        assert s.l3.capacity_bytes == 20 * MiB // 16

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SocketConfig(
                n_cores=0,
                l1=CacheGeometry(2 * KiB, 64, 2),
                l2=CacheGeometry(8 * KiB, 64, 4),
                l3=CacheGeometry(64 * KiB, 64, 4),
                dram_bandwidth_Bps=GBps(1),
            )


class TestNetworkConfig:
    def test_transfer_time_is_alpha_plus_beta(self):
        net = NetworkConfig(latency_ns=1000.0, bandwidth_Bps=1e9)
        assert net.transfer_ns(0) == pytest.approx(1000.0)
        # 1e9 B/s -> 1 ns per byte.
        assert net.transfer_ns(500) == pytest.approx(1500.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth_Bps=0)


class TestNodeAndCluster:
    def test_cores_per_node(self):
        node = NodeConfig(socket=xeon20mb(), n_sockets=2)
        assert node.cores_per_node == 16

    def test_cluster_totals(self):
        cluster = ClusterConfig(node=NodeConfig(socket=xeon20mb()), n_nodes=12)
        assert cluster.total_sockets == 24
        assert cluster.total_cores == 192

    def test_cluster_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(node=NodeConfig(socket=xeon20mb()), n_nodes=0)
