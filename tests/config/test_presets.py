"""Machine presets match the paper's Table I and Section IV setup."""

import pytest

from repro.config import (
    DEFAULT_SCALE,
    exascale_node,
    tiny_socket,
    xeon20mb,
    xeon20mb_cluster,
    xeon20mb_node,
)
from repro.units import GiB, KiB, MiB


class TestXeon20MB:
    def test_table_i_full_scale(self):
        """Table I verbatim: the headline architecture numbers."""
        s = xeon20mb(scale=1)
        assert s.n_cores == 8
        assert s.l1.capacity_bytes == 32 * KiB and s.l1.ways == 8
        assert s.l2.capacity_bytes == 256 * KiB and s.l2.ways == 8
        assert s.l3.capacity_bytes == 20 * MiB and s.l3.ways == 20
        assert s.line_bytes == 64
        assert s.dram_bandwidth_Bps == pytest.approx(17e9)

    def test_default_scale_preserves_ratios(self):
        full, scaled = xeon20mb(scale=1), xeon20mb()
        assert scaled.scale == DEFAULT_SCALE
        assert (
            full.l3.capacity_bytes / full.l2.capacity_bytes
            == scaled.l3.capacity_bytes / scaled.l2.capacity_bytes
        )
        assert scaled.l3.ways == full.l3.ways

    def test_node_has_two_sockets_32_gb(self):
        node = xeon20mb_node()
        assert node.n_sockets == 2
        assert node.dram_bytes == 32 * GiB

    def test_cluster_network_is_qdr(self):
        c = xeon20mb_cluster(n_nodes=12)
        assert c.n_nodes == 12
        assert c.network.bandwidth_Bps == pytest.approx(4e9)


class TestOtherPresets:
    def test_exascale_node_is_starved(self):
        x, e = xeon20mb(scale=1), exascale_node(scale=1)
        assert e.l3.capacity_bytes < x.l3.capacity_bytes
        assert e.dram_bandwidth_Bps < x.dram_bandwidth_Bps
        assert e.n_cores == x.n_cores  # fewer resources *per core*

    def test_tiny_socket_is_consistent(self):
        t = tiny_socket()
        assert t.l1.capacity_bytes < t.l2.capacity_bytes < t.l3.capacity_bytes
        assert t.scale == 1

    def test_tiny_socket_core_count_parameter(self):
        assert tiny_socket(n_cores=2).n_cores == 2
