"""CacheGeometry: derived quantities, validation, scaling."""

import pytest

from repro.config import CacheGeometry
from repro.errors import ConfigError
from repro.units import KiB, MiB


class TestDerivedQuantities:
    def test_paper_l3_geometry(self):
        l3 = CacheGeometry(20 * MiB, 64, 20, name="L3")
        assert l3.n_lines == 327_680
        assert l3.n_sets == 16_384
        assert l3.set_mask == 16_383
        assert l3.line_shift == 6

    def test_paper_l1_geometry(self):
        l1 = CacheGeometry(32 * KiB, 64, 8)
        assert l1.n_lines == 512
        assert l1.n_sets == 64

    def test_direct_mapped(self):
        c = CacheGeometry(4 * KiB, 64, 1)
        assert c.n_sets == c.n_lines == 64

    def test_fully_associative(self):
        c = CacheGeometry(4 * KiB, 64, 64)
        assert c.n_sets == 1
        assert c.set_mask == 0

    def test_describe_mentions_ways_and_size(self):
        text = CacheGeometry(20 * MiB, 64, 20, name="L3").describe()
        assert "L3" in text and "20-way" in text and "20MiB" in text


class TestValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError, match="power of two"):
            CacheGeometry(4 * KiB, 48, 4)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            CacheGeometry(0, 64, 4)

    def test_rejects_negative_ways(self):
        with pytest.raises(ConfigError):
            CacheGeometry(4 * KiB, 64, -1)

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ConfigError, match="not divisible"):
            CacheGeometry(4 * KiB + 64, 64, 4)

    def test_rejects_non_pow2_set_count(self):
        # 3 ways x 64B = 192; 4KiB/192 is not an integer -> indivisible;
        # use 12 KiB / 3 ways -> 64 sets (ok); 20 MiB / 20 ways -> 16384
        # sets (ok); build a non-pow2 set count explicitly:
        with pytest.raises(ConfigError, match="not a power"):
            CacheGeometry(12 * KiB, 64, 4)  # 48 sets


class TestScaling:
    def test_scaled_divides_capacity_keeps_shape(self):
        l3 = CacheGeometry(20 * MiB, 64, 20, name="L3")
        s = l3.scaled(16)
        assert s.capacity_bytes == 20 * MiB // 16
        assert s.ways == 20
        assert s.line_bytes == 64
        assert s.n_sets == l3.n_sets // 16

    def test_scaled_rejects_bad_scale(self):
        l3 = CacheGeometry(20 * MiB, 64, 20)
        with pytest.raises(ConfigError):
            l3.scaled(0)
        with pytest.raises(ConfigError):
            l3.scaled(3000000)  # not a divisor

    def test_scale_one_is_identity(self):
        l3 = CacheGeometry(20 * MiB, 64, 20)
        assert l3.scaled(1) == l3
