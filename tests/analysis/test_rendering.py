"""Tables, ASCII charts and experiment records."""

import json

import numpy as np
import pytest

from repro.analysis import (
    ExperimentRecord,
    band_chart,
    format_kv,
    format_table,
    line_chart,
)


class TestTables:
    def test_basic_table(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 0.125)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "0.125" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [(1,)])

    def test_format_kv_alignment(self):
        text = format_kv([("short", 1), ("a-much-longer-key", 2.5)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_format_kv_empty(self):
        assert format_kv([], title="t") == "t"


class TestCharts:
    def test_line_chart_renders_all_series(self):
        text = line_chart(
            {"x": [1, 2, 3], "y": [3, 2, 1]},
            x_labels=["a", "b", "c"],
            title="chart",
        )
        assert text.startswith("chart")
        assert "o=x" in text and "x=y" in text
        assert "a" in text

    def test_band_chart(self):
        text = band_chart([1.0, 2.0], [0.1, 0.2], title="band")
        assert "+sigma" in text and "-sigma" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, x_labels=["only-one"])
        with pytest.raises(ValueError):
            band_chart([1.0], [0.1, 0.2])

    def test_nan_values_skipped(self):
        text = line_chart({"a": [1.0, float("nan"), 3.0]})
        assert text  # renders without raising

    def test_flat_series_does_not_crash(self):
        assert line_chart({"a": [5.0, 5.0, 5.0]})


class TestRecords:
    def test_save_load_roundtrip(self, tmp_path):
        rec = ExperimentRecord(
            experiment_id="fig0",
            title="test",
            params={"mode": "smoke"},
            data={"xs": [1, 2, 3]},
        )
        rec.add_note("hello")
        path = rec.save(tmp_path)
        assert path.name == "fig0.json"
        loaded = ExperimentRecord.load(path)
        assert loaded.experiment_id == "fig0"
        assert loaded.data["xs"] == [1, 2, 3]
        assert loaded.notes == ["hello"]

    def test_numpy_values_serialise(self, tmp_path):
        rec = ExperimentRecord(
            experiment_id="np",
            title="numpy",
            data={"arr": np.array([1.5, 2.5]), "scalar": np.float64(3.5)},
        )
        payload = json.loads(rec.to_json())
        assert payload["data"]["arr"] == [1.5, 2.5]
        assert payload["data"]["scalar"] == 3.5

    def test_unserialisable_raises(self):
        rec = ExperimentRecord(experiment_id="x", title="x", data={"f": object()})
        with pytest.raises(TypeError):
            rec.to_json()
