"""Statistics helpers."""

import pytest

from repro.analysis import (
    Band,
    band,
    bootstrap_ci,
    geometric_mean,
    relative_change,
    slowdown,
)


class TestBand:
    def test_mean_and_std(self):
        b = band([1.0, 2.0, 3.0])
        assert b.mean == pytest.approx(2.0)
        assert b.std == pytest.approx((2 / 3) ** 0.5)
        assert b.n == 3
        assert b.lo == pytest.approx(b.mean - b.std)
        assert b.hi == pytest.approx(b.mean + b.std)

    def test_single_value(self):
        b = band([5.0])
        assert b.mean == 5.0 and b.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            band([])

    def test_str(self):
        assert "n=2" in str(band([1.0, 2.0]))


class TestRatios:
    def test_relative_change(self):
        assert relative_change(120.0, 100.0) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            relative_change(1.0, 0.0)

    def test_slowdown(self):
        assert slowdown(150.0, 100.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            slowdown(1.0, -1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestBootstrap:
    def test_ci_contains_mean_for_clean_data(self):
        data = [10.0, 11.0, 9.0, 10.5, 9.5] * 10
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= 10.0 <= hi
        assert hi - lo < 1.0

    def test_deterministic_under_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
