"""The Fig. 4 probabilistic benchmark."""

import numpy as np
import pytest

from repro.engine import SocketSimulator, ThreadContext
from repro.mem import AddressSpace
from repro.models import EHRModel
from repro.units import KiB, MiB
from repro.workloads import ProbabilisticBenchmark, UniformDist, NormalDist


def ctx_for(socket, seed=0):
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=socket.line_bytes),
        rng=np.random.default_rng(seed),
        core_id=0,
    )


class TestStructure:
    def test_buffer_scaled(self, xeon):
        b = ProbabilisticBenchmark(UniformDist(), 50 * MiB)
        b.start(ctx_for(xeon))
        assert b.buffer.size_bytes == 50 * MiB // xeon.scale

    def test_line_pmf_matches_buffer_shape(self, xeon):
        b = ProbabilisticBenchmark(NormalDist(6), 32 * MiB)
        b.start(ctx_for(xeon))
        assert len(b.line_pmf()) == b.buffer.n_lines

    def test_line_pmf_requires_start(self, xeon):
        b = ProbabilisticBenchmark(UniformDist(), 32 * MiB)
        with pytest.raises(AssertionError):
            b.line_pmf()

    def test_finite_access_budget(self, tiny):
        b = ProbabilisticBenchmark(UniformDist(), 32 * KiB, n_accesses=700)
        b.start(ctx_for(tiny))
        total = sum(len(c) for c in b.chunks())
        assert total == 700

    def test_reads_only(self, tiny):
        b = ProbabilisticBenchmark(UniformDist(), 32 * KiB, n_accesses=10)
        b.start(ctx_for(tiny))
        assert not next(iter(b.chunks())).is_write

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ProbabilisticBenchmark(UniformDist(), 0)
        with pytest.raises(ValueError):
            ProbabilisticBenchmark(UniformDist(), 1024, ops_per_access=-1)


class TestEndToEnd:
    def test_uniform_miss_rate_matches_eq4(self, xeon):
        """The paper's central validation, in miniature: Uni over 50 MB
        against the 20 MB L3 -> miss rate ~ 1 - 20/50 = 0.6."""
        probe = ProbabilisticBenchmark(UniformDist(), 50 * MiB)
        sim = SocketSimulator(xeon, seed=11)
        core = sim.add_thread(probe, main=True)
        sim.warmup(accesses=50_000)
        r = sim.measure(accesses=30_000)
        model = EHRModel(probe.line_pmf(), line_bytes=xeon.line_bytes)
        predicted = 1.0 - min(1.0, xeon.l3.n_lines * model.s2)
        assert r.l3_miss_rate(core) == pytest.approx(predicted, abs=0.05)

    def test_concentrated_distribution_misses_less(self, xeon):
        def run(dist):
            probe = ProbabilisticBenchmark(dist, 50 * MiB)
            sim = SocketSimulator(xeon, seed=12)
            core = sim.add_thread(probe, main=True)
            sim.warmup(accesses=40_000)
            return sim.measure(accesses=20_000).l3_miss_rate(core)

        assert run(NormalDist(8)) < run(UniformDist())
