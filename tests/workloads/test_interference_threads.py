"""BWThr and CSThr behaviour — the paper's Section II/III properties."""

import numpy as np
import pytest

from repro.config import xeon20mb
from repro.engine import SocketSimulator, ThreadContext
from repro.mem import AddressSpace
from repro.units import KiB, MiB, as_GBps
from repro.workloads import BWThr, CSThr, LINE_STRIDE


def ctx_for(socket, core=0, seed=0):
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=socket.line_bytes),
        rng=np.random.default_rng(seed),
        core_id=core,
    )


class TestBWThrStructure:
    def test_allocates_n_buffers_scaled(self, xeon):
        bw = BWThr(buffer_bytes=520 * 1024, n_buffers=4)
        bw.start(ctx_for(xeon))
        assert len(bw.buffers) == 4
        expected = (520 * 1024 // xeon.scale // 64) * 64
        assert bw.buffers[0].size_bytes == expected

    def test_footprint_exceeds_l3(self, xeon):
        """The 44 x 520 KB working set must overflow the 20 MB L3 — the
        property that makes every access a miss."""
        bw = BWThr()
        bw.start(ctx_for(xeon))
        assert bw.footprint_lines() > xeon.l3.n_lines

    def test_chunks_have_constant_line_stride(self, xeon):
        bw = BWThr(n_buffers=2, quantum=32)
        bw.start(ctx_for(xeon))
        chunk = next(bw.chunks())
        strides = {b - a for a, b in zip(chunk.lines, chunk.lines[1:])}
        # constant stride except at most one wrap
        assert LINE_STRIDE in strides
        assert len(strides) <= 2

    def test_sweep_covers_every_line(self, xeon):
        """Stride-7 modular sweep visits all lines of a buffer (the
        coprimality requirement)."""
        bw = BWThr(buffer_bytes=64 * KiB, n_buffers=1, quantum=64)
        bw.start(ctx_for(bw_socket := xeon))
        buf = bw.buffers[0]
        gen = bw.chunks()
        seen = set()
        while len(seen) < buf.n_lines:
            chunk = next(gen)
            before = len(seen)
            seen.update(chunk.lines)
            assert len(seen) > before  # progress every chunk
        assert seen == set(range(buf.base_line, buf.base_line + buf.n_lines))

    def test_chunks_are_rmw_writes(self, xeon):
        bw = BWThr(n_buffers=1)
        bw.start(ctx_for(xeon))
        assert next(bw.chunks()).is_write

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BWThr(buffer_bytes=0)
        with pytest.raises(ValueError):
            BWThr(n_buffers=0)


class TestCSThrStructure:
    def test_buffer_scaled_from_paper_units(self, xeon):
        cs = CSThr()  # 4 MB paper default
        cs.start(ctx_for(xeon))
        assert cs.buffer.size_bytes == 4 * MiB // xeon.scale

    def test_accesses_stay_inside_buffer(self, xeon):
        cs = CSThr()
        cs.start(ctx_for(xeon))
        chunk = next(cs.chunks())
        lo, hi = cs.buffer.base_line, cs.buffer.base_line + cs.buffer.n_lines
        assert all(lo <= a < hi for a in chunk.lines)

    def test_chunks_not_prefetchable(self, xeon):
        cs = CSThr()
        cs.start(ctx_for(xeon))
        assert not next(cs.chunks()).prefetchable


@pytest.mark.slow
class TestCalibration:
    """The Section III-A numbers on the simulated machine."""

    def test_bwthr_draws_about_2_8_GBps(self, xeon):
        sim = SocketSimulator(xeon, seed=1)
        core = sim.add_thread(BWThr(), main=True)
        sim.warmup(accesses=25_000)
        r = sim.measure(accesses=25_000)
        assert as_GBps(r.bandwidth_Bps(core)) == pytest.approx(2.8, rel=0.2)

    def test_csthr_draws_almost_no_bandwidth(self, xeon):
        """'A single CSThr without additional interference utilizes very
        little memory bandwidth' (Section III-D)."""
        sim = SocketSimulator(xeon, seed=2)
        core = sim.add_thread(CSThr(), main=True)
        sim.warmup(accesses=20_000)
        r = sim.measure(accesses=20_000)
        assert as_GBps(r.bandwidth_Bps(core)) < 0.2

    def test_csthr_occupies_its_footprint(self, xeon):
        """CSThr pins ~its whole buffer in the shared L3."""
        sim = SocketSimulator(xeon, seed=3, track_owner=True)
        cs = CSThr()
        core = sim.add_thread(cs, main=True)
        sim.warmup(accesses=20_000)
        sim.measure(accesses=5_000)
        occ = sim.l3_occupancy_by_owner()
        assert occ.get(core, 0) >= 0.9 * cs.footprint_lines()

    def test_csthr_mostly_hits_l3(self, xeon):
        """Buffer >> private caches and random order: 'almost every
        access misses in the L1 and L2 and hits in the L3'."""
        sim = SocketSimulator(xeon, seed=4)
        core = sim.add_thread(CSThr(), main=True)
        sim.warmup(accesses=20_000)
        r = sim.measure(accesses=20_000)
        c = r.counters_of(core)
        assert c.l3_hits / c.accesses > 0.85
        assert c.l3_miss_rate < 0.02
