"""STREAM triad and pointer-chase probes."""

import numpy as np
import pytest

from repro.config import tiny_socket, xeon20mb
from repro.engine import SocketSimulator, ThreadContext
from repro.mem import AddressSpace
from repro.units import KiB
from repro.workloads import PointerChase, StreamTriad


def ctx_for(socket, seed=0):
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=socket.line_bytes),
        rng=np.random.default_rng(seed),
        core_id=0,
    )


class TestStreamTriad:
    def test_allocates_three_arrays(self, xeon):
        s = StreamTriad()
        s.start(ctx_for(xeon))
        assert len(s.arrays) == 3

    def test_chunk_cycle_is_b_c_a(self, xeon):
        s = StreamTriad(quantum=16)
        s.start(ctx_for(xeon))
        gen = s.chunks()
        c1, c2, c3 = next(gen), next(gen), next(gen)
        a, b, c = s.arrays
        assert c1.lines[0] == b.base_line and not c1.is_write
        assert c2.lines[0] == c.base_line and not c2.is_write
        assert c3.lines[0] == a.base_line and c3.is_write

    def test_distinct_stream_ids(self, xeon):
        s = StreamTriad(quantum=16)
        s.start(ctx_for(xeon))
        gen = s.chunks()
        ids = {next(gen).stream_id for _ in range(3)}
        assert len(ids) == 3

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            StreamTriad(array_bytes=0)


class TestPointerChase:
    def test_visits_every_line_once_per_lap(self, tiny):
        pc = PointerChase(buffer_bytes=4 * KiB, n_accesses=64)
        pc.start(ctx_for(tiny))
        lines = []
        for chunk in pc.chunks():
            lines.extend(chunk.lines)
        assert len(lines) == 64
        assert len(set(lines)) == pc.buffer.n_lines  # 4 KiB / 64 B = 64

    def test_chunks_are_serialized_and_unprefetchable(self, tiny):
        pc = PointerChase(buffer_bytes=4 * KiB, n_accesses=16)
        pc.start(ctx_for(tiny))
        chunk = next(iter(pc.chunks()))
        assert chunk.serialize and not chunk.prefetchable

    def test_measures_latency_ladder(self):
        """The probe must observe L1 < L2 < L3 < DRAM latencies from
        software, like the X-Ray microbenchmarks the paper cites."""
        socket = xeon20mb()
        t = socket.timing

        def latency(buf_bytes):
            sim = SocketSimulator(socket, seed=5)
            core = sim.add_thread(PointerChase(buffer_bytes=buf_bytes), main=True)
            sim.warmup(accesses=6_000)
            r = sim.measure(accesses=6_000)
            c = r.counters_of(core)
            return (c.elapsed_ns - c.compute_ns) / c.accesses

        lat_l1 = latency(socket.l1.capacity_bytes // 2)
        lat_l2 = latency(socket.l2.capacity_bytes // 2)
        lat_l3 = latency(socket.l3.capacity_bytes // 2)
        lat_dram = latency(socket.l3.capacity_bytes * 4)
        assert lat_l1 < lat_l2 < lat_l3 < lat_dram
        assert lat_l1 == pytest.approx(t.l1_hit_ns, rel=0.3)
        assert lat_dram == pytest.approx(t.dram_latency_ns, rel=0.35)
