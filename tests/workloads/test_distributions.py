"""Table II distribution library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.workloads import (
    ExponentialDist,
    NormalDist,
    TriangularDist,
    UniformDist,
    table_ii_distributions,
)

ALL = list(table_ii_distributions().values())


class TestTableII:
    def test_ten_patterns(self):
        names = set(table_ii_distributions())
        assert names == {
            "Norm_4", "Norm_6", "Norm_8",
            "Exp_4", "Exp_6", "Exp_8",
            "Tri_1", "Tri_2", "Tri_3", "Uni",
        }

    def test_normal_std_ordering(self):
        """Table II: sigma = n/4 > n/6 > n/8."""
        s4 = NormalDist(4).std()
        s6 = NormalDist(6).std()
        s8 = NormalDist(8).std()
        assert s4 > s6 > s8

    def test_uniform_std_matches_closed_form(self):
        # var of U(0,1) = 1/12.
        assert UniformDist().std() == pytest.approx((1 / 12) ** 0.5, rel=0.01)


@pytest.mark.parametrize("dist", ALL, ids=lambda d: d.name)
class TestEveryDistribution:
    def test_cdf_is_monotone_and_normalised(self, dist):
        grid = np.linspace(0, 1, 101)
        vals = [dist.truncated_cdf(u) for u in grid]
        assert vals[0] == pytest.approx(0.0, abs=1e-12)
        assert vals[-1] == pytest.approx(1.0, abs=1e-12)
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_samples_in_range(self, dist):
        rng = np.random.default_rng(0)
        idx = dist.sample(rng, 5000, 1000)
        assert idx.min() >= 0 and idx.max() < 1000

    def test_line_pmf_sums_to_one(self, dist):
        pmf = dist.line_pmf(n_elems=4096, elems_per_line=16)
        assert pmf.sum() == pytest.approx(1.0)
        assert len(pmf) == 256
        assert (pmf >= 0).all()

    def test_line_pmf_partial_last_line(self, dist):
        pmf = dist.line_pmf(n_elems=100, elems_per_line=16)
        assert len(pmf) == 7  # ceil(100/16)
        assert pmf.sum() == pytest.approx(1.0)

    def test_samples_match_pmf(self, dist):
        """Empirical line frequencies must track the analytic line pmf —
        the consistency the paper's validation hinges on."""
        n_elems, epl = 1600, 16
        rng = np.random.default_rng(1)
        idx = dist.sample(rng, 60_000, n_elems)
        lines = idx // epl
        counts = np.bincount(lines, minlength=n_elems // epl)
        empirical = counts / counts.sum()
        pmf = dist.line_pmf(n_elems, epl)
        # total-variation distance small
        tv = 0.5 * np.abs(empirical - pmf).sum()
        assert tv < 0.03


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            NormalDist(0)
        with pytest.raises(ModelError):
            ExponentialDist(-2)
        with pytest.raises(ModelError):
            TriangularDist(1.5)

    def test_sample_rejects_empty_buffer(self):
        with pytest.raises(ModelError):
            UniformDist().sample(np.random.default_rng(0), 10, 0)

    def test_line_pmf_rejects_bad_sizes(self):
        with pytest.raises(ModelError):
            UniformDist().line_pmf(0, 16)


@given(
    k=st.sampled_from([4.0, 6.0, 8.0]),
    n=st.integers(min_value=64, max_value=4096),
)
@settings(max_examples=30, deadline=None)
def test_property_normal_sampling_stays_in_buffer(k, n):
    dist = NormalDist(k)
    rng = np.random.default_rng(0)
    idx = dist.sample(rng, 256, n)
    assert ((idx >= 0) & (idx < n)).all()


@given(mode=st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=30, deadline=None)
def test_property_triangular_cdf_at_mode(mode):
    dist = TriangularDist(mode)
    # CDF at the mode equals mode for a 0..1 triangular: F(b) = b/(c-a)*...
    assert dist.cdf01(mode) == pytest.approx(mode, abs=1e-9)


class TestZipf:
    """ZipfDist — the beyond-Table-II skewed pattern."""

    def test_head_concentration(self):
        from repro.workloads import ZipfDist

        pmf = ZipfDist(1.0).line_pmf(16_000, 16)
        # First 5% of lines hold far more than 5% of the mass.
        assert pmf[:50].sum() > 0.3
        # Monotone decreasing head.
        assert pmf[0] > pmf[10] > pmf[100]

    def test_alpha_zero_is_nearly_uniform(self):
        from repro.workloads import ZipfDist

        pmf = ZipfDist(0.0).line_pmf(1600, 16)
        assert pmf.max() / pmf.min() < 1.01

    def test_samples_match_pmf(self):
        import numpy as np
        from repro.workloads import ZipfDist

        dist = ZipfDist(0.8)
        rng = np.random.default_rng(2)
        idx = dist.sample(rng, 60_000, 1600)
        counts = np.bincount(idx // 16, minlength=100)
        empirical = counts / counts.sum()
        pmf = dist.line_pmf(1600, 16)
        tv = 0.5 * abs(empirical - pmf).sum()
        assert tv < 0.03

    def test_validation(self):
        from repro.errors import ModelError
        from repro.workloads import ZipfDist

        with pytest.raises(ModelError):
            ZipfDist(alpha=-1)
        with pytest.raises(ModelError):
            ZipfDist(q=0.0)
