"""Bubble-Up comparison probe."""

import numpy as np
import pytest

from repro.engine import SocketSimulator, ThreadContext
from repro.errors import ConfigError
from repro.mem import AddressSpace
from repro.units import MiB
from repro.workloads import BubbleProbe


def ctx_for(socket, seed=0):
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=socket.line_bytes),
        rng=np.random.default_rng(seed),
        core_id=0,
    )


class TestStructure:
    def test_pressure_scales_resident_buffer(self, xeon):
        low = BubbleProbe(0.2)
        low.start(ctx_for(xeon))
        high = BubbleProbe(1.0)
        high.start(ctx_for(xeon))
        assert high.resident.size_bytes > low.resident.size_bytes

    def test_pressure_bounds_validated(self):
        with pytest.raises(ConfigError):
            BubbleProbe(-0.1)
        with pytest.raises(ConfigError):
            BubbleProbe(1.5)
        with pytest.raises(ConfigError):
            BubbleProbe(0.5, resident_bytes=0)

    def test_zero_pressure_emits_no_streaming(self, xeon):
        b = BubbleProbe(0.0)
        b.start(ctx_for(xeon))
        gen = b.chunks()
        chunks = [next(gen) for _ in range(6)]
        # all chunks come from the (tiny) resident buffer
        lo = b.resident.base_line
        hi = lo + b.resident.n_lines
        for c in chunks:
            assert all(lo <= a < hi for a in c.lines)

    def test_full_pressure_mixes_stream_chunks(self, xeon):
        b = BubbleProbe(1.0)
        b.start(ctx_for(xeon))
        gen = b.chunks()
        chunks = [next(gen) for _ in range(10)]
        stream_lo = b.stream.base_line
        has_stream = any(c.lines[0] >= stream_lo for c in chunks)
        assert has_stream


@pytest.mark.slow
class TestPressureBehaviour:
    def test_higher_pressure_degrades_victim_more(self, xeon):
        from repro.workloads import CSThr

        def victim_time(pressure):
            sim = SocketSimulator(xeon, seed=2)
            core = sim.add_thread(CSThr(buffer_bytes=6 * MiB), main=True)
            if pressure > 0:
                for i in range(3):
                    sim.add_thread(BubbleProbe(pressure, name=f"b{i}"))
            sim.warmup(accesses=15_000)
            r = sim.measure(accesses=15_000)
            return r.counters_of(core).elapsed_ns

        t0 = victim_time(0.0)
        t_mid = victim_time(0.5)
        t_hi = victim_time(1.0)
        assert t0 < t_mid < t_hi
