"""Hot/cold ground-truth probe."""

import numpy as np
import pytest

from repro.engine import SocketSimulator, ThreadContext
from repro.errors import ConfigError
from repro.mem import AddressSpace
from repro.units import MiB
from repro.workloads import HotColdProbe


def ctx_for(socket, seed=0):
    return ThreadContext(
        socket=socket,
        addrspace=AddressSpace(line_bytes=socket.line_bytes),
        rng=np.random.default_rng(seed),
        core_id=0,
    )


class TestStructure:
    def test_buffers_sized_from_paper_units(self, xeon):
        p = HotColdProbe(hot_bytes=8 * MiB)
        p.start(ctx_for(xeon))
        assert p.hot.size_bytes == 8 * MiB // xeon.scale
        assert p.cold.size_bytes > p.hot.size_bytes

    def test_hot_fraction_respected(self, xeon):
        p = HotColdProbe(hot_bytes=4 * MiB, hot_fraction=0.8, quantum=256)
        p.start(ctx_for(xeon))
        gen = p.chunks()
        hot_acc = cold_acc = 0
        hot_range = range(p.hot.base_line, p.hot.base_line + p.hot.n_lines)
        for _ in range(40):
            c = next(gen)
            if c.lines[0] in hot_range:
                hot_acc += len(c)
            else:
                cold_acc += len(c)
        frac = hot_acc / (hot_acc + cold_acc)
        assert frac == pytest.approx(0.8, abs=0.05)

    def test_pure_hot_mode(self, xeon):
        p = HotColdProbe(hot_bytes=4 * MiB, hot_fraction=1.0)
        p.start(ctx_for(xeon))
        gen = p.chunks()
        hot_range = range(p.hot.base_line, p.hot.base_line + p.hot.n_lines)
        for _ in range(10):
            assert next(gen).lines[0] in hot_range

    def test_validation(self):
        with pytest.raises(ConfigError):
            HotColdProbe(hot_bytes=0)
        with pytest.raises(ConfigError):
            HotColdProbe(hot_bytes=1024, hot_fraction=0.0)
        with pytest.raises(ConfigError):
            HotColdProbe(hot_bytes=1024, hot_fraction=1.5)


@pytest.mark.slow
class TestGroundTruth:
    def test_hot_set_is_resident_and_defended(self, xeon):
        """After warmup the hot buffer must be (nearly) fully L3-resident
        — that is what makes its size the ground-truth capacity use."""
        probe = HotColdProbe(hot_bytes=6 * MiB)
        sim = SocketSimulator(xeon, seed=5, track_owner=True)
        core = sim.add_thread(probe, main=True)
        sim.warmup(accesses=30_000)
        sim.measure(accesses=5_000)
        occ = sim.l3_occupancy_by_owner().get(core, 0)
        assert occ >= 0.9 * probe.hot.n_lines
