"""Unit helpers."""

import pytest

from repro.units import (
    GBps,
    GiB,
    KiB,
    MiB,
    as_GBps,
    fmt_bytes,
    fmt_time_ns,
    parse_size,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB


class TestBandwidth:
    def test_roundtrip(self):
        assert as_GBps(GBps(17.0)) == pytest.approx(17.0)

    def test_gbps_is_decimal(self):
        assert GBps(1) == 1e9


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0B"),
            (63, "63B"),
            (20 * MiB, "20MiB"),
            (4 * KiB, "4KiB"),
            (3 * GiB, "3GiB"),
            (1536, "1.5KiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    @pytest.mark.parametrize(
        "ns,expected",
        [
            (5.0, "5ns"),
            (2_500.0, "2.5us"),
            (3_000_000.0, "3ms"),
            (2e9, "2s"),
        ],
    )
    def test_fmt_time(self, ns, expected):
        assert fmt_time_ns(ns) == expected


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64B", 64),
            ("20MiB", 20 * MiB),
            ("4 MB", 4_000_000),
            ("1kb", 1000),
            ("2GiB", 2 * GiB),
            ("512", 512),
            ("1.5KiB", 1536),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_size("lots")
