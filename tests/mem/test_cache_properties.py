"""Property-based tests of the reference cache (hypothesis).

The key invariant is the LRU *inclusion property*: an access hits a
``W``-way LRU set iff fewer than ``W`` distinct lines of that set were
touched since the previous access to the same line. We check the cache
against an oracle that computes exactly that.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import CacheGeometry
from repro.mem import SetAssociativeCache

GEOM = CacheGeometry(1024, 64, 4, name="prop")  # 4 sets x 4 ways
N_SETS, WAYS = GEOM.n_sets, GEOM.ways

traces = st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=400)


def oracle_hits(trace: list[int]) -> list[bool]:
    """Per-set LRU stack simulation, the textbook way."""
    stacks: dict[int, list[int]] = {}
    hits = []
    for a in trace:
        s = a % N_SETS
        stack = stacks.setdefault(s, [])
        if a in stack:
            hits.append(True)
            stack.remove(a)
        else:
            hits.append(False)
            if len(stack) == WAYS:
                stack.pop(0)
        stack.append(a)
    return hits


@given(traces)
@settings(max_examples=200, deadline=None)
def test_lru_matches_stack_oracle(trace):
    cache = SetAssociativeCache(GEOM)
    got = [cache.access(a).hit for a in trace]
    assert got == oracle_hits(trace)


@given(traces)
@settings(max_examples=100, deadline=None)
def test_occupancy_never_exceeds_capacity(trace):
    cache = SetAssociativeCache(GEOM)
    for a in trace:
        cache.access(a)
        assert cache.occupancy() <= GEOM.n_lines


@given(traces)
@settings(max_examples=100, deadline=None)
def test_stats_are_consistent(trace):
    cache = SetAssociativeCache(GEOM)
    for a in trace:
        cache.access(a)
    s = cache.stats
    assert s.hits + s.misses == s.accesses == len(trace)
    assert s.fills == s.misses
    assert s.evictions <= s.misses
    assert s.writebacks <= s.evictions
    # Every missed line was filled; residency = fills - evictions.
    assert cache.occupancy() == s.fills - s.evictions


@given(traces, st.sampled_from(["lru", "fifo", "plru", "random"]))
@settings(max_examples=100, deadline=None)
def test_all_policies_preserve_capacity_invariants(trace, policy):
    cache = SetAssociativeCache(GEOM, policy=policy)
    for a in trace:
        cache.access(a)
    assert cache.occupancy() <= GEOM.n_lines
    assert cache.stats.hits + cache.stats.misses == len(trace)


@given(traces)
@settings(max_examples=100, deadline=None)
def test_resident_lines_agree_with_probe_and_trace(trace):
    cache = SetAssociativeCache(GEOM)
    for a in trace:
        cache.access(a)
    resident = set(cache.resident_lines())
    # Residency reported by the iterator agrees with probe(), and every
    # resident line was actually accessed.
    for a in set(trace) | resident:
        assert (a in resident) == cache.probe(a)
    assert resident <= set(trace)
