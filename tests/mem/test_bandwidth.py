"""Rate-matching DRAM-link arbiter."""

import pytest

from repro.config import xeon20mb
from repro.mem import BandwidthArbiter


def make():
    return BandwidthArbiter(xeon20mb(scale=1))


class TestBasics:
    def test_service_time_matches_capacity(self):
        arb = make()
        # 64 B at 17 GB/s ~ 3.76 ns.
        assert arb.service_ns == pytest.approx(64 / 17e9 * 1e9)

    def test_counters_accumulate(self):
        arb = make()
        arb.request_fill(0.0)
        arb.request_fill(10.0)
        assert arb.fill_bytes == 128
        assert arb.busy_ns == pytest.approx(2 * arb.service_ns)

    def test_writeback_counted_not_throttled(self):
        arb = make()
        arb.note_writeback()
        assert arb.writeback_bytes == 64
        assert arb.current_delay_ns() == 0.0

    def test_reset_counters_keeps_controller(self):
        arb = make()
        for i in range(10000):
            arb.request_fill(i * 0.5)  # heavy overload
        delay_before = arb.current_delay_ns()
        arb.reset_counters()
        assert arb.fill_bytes == 0
        assert arb.current_delay_ns() == delay_before


class TestControlBehaviour:
    def test_sub_capacity_delay_is_small(self):
        """At half the service rate the controller stays off; only the
        (small) bandwidth-latency knee remains."""
        arb = make()
        gap = 2 * arb.service_ns
        t = 0.0
        for _ in range(5000):
            delay = arb.request_fill(t)
            t += gap
        assert delay < arb.service_ns
        assert arb._delay_ns == 0.0  # saturation controller never engaged
        assert arb.offered_rho() < 0.75

    def test_overload_builds_delay(self):
        """Fills at 3x capacity must accumulate queueing delay."""
        arb = make()
        gap = arb.service_ns / 3
        t = 0.0
        for _ in range(20000):
            t += gap
            arb.request_fill(t)
        assert arb.current_delay_ns() > arb.service_ns

    def test_closed_loop_throttles_to_capacity(self):
        """A source that waits out the returned delay (closed loop) is
        throttled to ~the link capacity."""
        arb = make()
        native_gap = arb.service_ns / 4  # 4x overload if unthrottled
        t = 0.0
        fills = 0
        # warm-up for controller convergence
        for _ in range(30000):
            t += native_gap + arb.request_fill(t)
        t0 = t
        for _ in range(20000):
            t += native_gap + arb.request_fill(t)
            fills += 1
        achieved = fills * arb.line_bytes / ((t - t0) * 1e-9)
        assert achieved <= arb.capacity_Bps * 1.25
        assert achieved >= arb.capacity_Bps * 0.5

    def test_skewed_timestamps_do_not_fake_load(self):
        """Out-of-order timestamps within a window (scheduler chunk skew)
        must not register as overload."""
        arb = make()
        gap = 4 * arb.service_ns  # 25% load overall
        t = 0.0
        for i in range(20000):
            t += gap
            # Every other request is stamped in the past (lagging core).
            stamp = t - 30 * gap if i % 2 else t
            arb.request_fill(stamp)
        assert arb.current_delay_ns() < arb.service_ns

    def test_knee_grows_with_load(self):
        def run_at(relative_load):
            arb = make()
            gap = arb.service_ns / relative_load
            t = 0.0
            for _ in range(30000):
                t += gap
                arb.request_fill(t)
            return arb.current_delay_ns()

        assert run_at(0.2) < run_at(0.6) < run_at(0.9)

    def test_delay_is_never_negative(self):
        arb = make()
        for i in range(5000):
            assert arb.request_fill(i * 100.0) >= 0.0

    def test_delay_is_bounded(self):
        arb = make()
        for i in range(50000):
            arb.request_fill(i * 0.1)  # absurd overload
        limit = (arb.MAX_DELAY_SERVICES + 1) * arb.service_ns
        # knee adds at most service/ (1-0.97)
        limit += arb.service_ns * 0.97**2 / 0.03 + 1
        assert arb.current_delay_ns() <= limit


class TestWritebackThrottling:
    def test_default_writebacks_do_not_feed_rate(self):
        arb = make()
        for i in range(2000):
            arb.note_writeback(i * 1.0)
        assert arb.busy_ns == 0.0
        assert arb.writeback_bytes == 2000 * 64

    def test_throttled_writebacks_raise_offered_load(self):
        from dataclasses import replace

        from repro.config import xeon20mb

        socket = replace(xeon20mb(scale=1), throttle_writebacks=True)
        arb = BandwidthArbiter(socket)
        gap = 2 * arb.service_ns  # fills alone: 50% load
        t = 0.0
        for _ in range(20_000):
            t += gap
            arb.request_fill(t)
            arb.note_writeback(t)  # doubles the traffic -> ~100% load
        assert arb.offered_rho() > 0.8
        assert arb.busy_ns > 0.0


class TestUtilizationUnclamped:
    """Regression (DESIGN decision 10): utilization used to be clamped
    with ``min(1.0, ...)``, silently hiding over-counting bugs."""

    def test_reports_over_unity(self):
        arb = make()
        for _ in range(100):
            arb.request_fill(0.0)
        window = 10 * arb.service_ns  # busy = 100 services >> window
        assert arb.utilization(window) == pytest.approx(10.0)

    def test_zero_window_is_zero(self):
        assert make().utilization(0.0) == 0.0

    def test_explicit_link_constructor(self):
        """The node layer builds arbiters without a SocketConfig."""
        arb = BandwidthArbiter(line_bytes=64, bandwidth_Bps=1e9)
        assert arb.service_ns == pytest.approx(64.0)
        with pytest.raises(ValueError):
            BandwidthArbiter()
        with pytest.raises(ValueError):
            BandwidthArbiter(line_bytes=64, bandwidth_Bps=0.0)

    def test_summary_flags_accounting_error(self):
        from repro.engine.results import _utilization_pct

        assert "ACCOUNTING ERROR" in _utilization_pct(1.2)
        assert "ACCOUNTING ERROR" not in _utilization_pct(1.0)
        assert _utilization_pct(0.5) == "50%"
