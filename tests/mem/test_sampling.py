"""Set-sampled miss-ratio estimation."""

import numpy as np
import pytest

from repro.config import xeon20mb
from repro.errors import ConfigError
from repro.mem import SampledL3, sampled_miss_rate
from repro.trace import record_trace
from repro.units import MiB
from repro.workloads import ProbabilisticBenchmark, UniformDist, NormalDist


class TestMechanics:
    def test_sample_shift_zero_simulates_everything(self, xeon):
        sim = SampledL3(xeon, sample_shift=0)
        rng = np.random.default_rng(0)
        n = sim.run(rng.integers(0, 10_000, size=5000))
        assert n == 5000

    def test_sampling_fraction(self, xeon):
        sim = SampledL3(xeon, sample_shift=3)
        rng = np.random.default_rng(1)
        n = sim.run(rng.integers(0, 100_000, size=40_000))
        assert n == pytest.approx(40_000 / 8, rel=0.1)
        assert sim.sampled_fraction == 0.125

    def test_counters_and_reset(self, xeon):
        sim = SampledL3(xeon, sample_shift=2)
        rng = np.random.default_rng(2)
        sim.run(rng.integers(0, 50_000, size=20_000))
        assert sim.hits + sim.misses == sim.accesses > 0
        sim.reset_counters()
        assert sim.accesses == 0

    def test_accepts_plain_lists(self, xeon):
        sim = SampledL3(xeon, sample_shift=1)
        sim.run([0, 1, 2, 3, 4, 5, 6, 7])
        assert sim.accesses == 4  # even set indices only

    def test_validation(self, xeon):
        with pytest.raises(ConfigError):
            SampledL3(xeon, sample_shift=-1)
        with pytest.raises(ConfigError):
            SampledL3(xeon, sample_shift=30)
        with pytest.raises(ConfigError):
            sampled_miss_rate(xeon, np.array([1, 2]), warmup_fraction=1.0)


class TestAccuracy:
    @pytest.mark.parametrize("dist", [UniformDist(), NormalDist(6)], ids=["Uni", "Norm_6"])
    def test_sampled_estimate_tracks_full_simulation(self, xeon, dist):
        """Kessler's result: 1/8 sampling estimates the miss ratio of the
        full cache within a few points."""
        probe = ProbabilisticBenchmark(dist, 50 * MiB)
        trace = record_trace(probe, 120_000, xeon).lines
        full = sampled_miss_rate(xeon, trace, sample_shift=0)
        est = sampled_miss_rate(xeon, trace, sample_shift=3)
        assert est == pytest.approx(full, abs=0.03)

    def test_uniform_matches_eq4(self, xeon):
        probe = ProbabilisticBenchmark(UniformDist(), 40 * MiB)
        trace = record_trace(probe, 120_000, xeon).lines
        est = sampled_miss_rate(xeon, trace, sample_shift=3)
        assert est == pytest.approx(1 - 20 / 40, abs=0.05)
