"""Performance-counter records."""

import pytest

from repro.mem import CoreCounters, SocketCounters


class TestCoreCounters:
    def test_l3_accesses_composition(self):
        c = CoreCounters(l3_hits=10, prefetch_hits=5, l3_misses=5)
        assert c.l3_accesses == 20
        assert c.l3_miss_rate == pytest.approx(0.25)

    def test_miss_rate_zero_when_idle(self):
        assert CoreCounters().l3_miss_rate == 0.0

    def test_eq1_bandwidth(self):
        """Eq. 1: BW = line * misses / time. 1000 fills of 64 B in 1 us
        = 64 GB/s."""
        c = CoreCounters(l3_misses=600, prefetch_fills=400, elapsed_ns=1000.0)
        assert c.bandwidth_Bps(64) == pytest.approx(64e9)

    def test_bandwidth_zero_without_time(self):
        assert CoreCounters(l3_misses=5).bandwidth_Bps(64) == 0.0

    def test_reset_zeroes_everything(self):
        c = CoreCounters(accesses=5, l1_hits=1, stall_ns=10.0, offsocket_ns=2.0)
        c.reset()
        assert c.accesses == 0 and c.l1_hits == 0
        assert c.stall_ns == 0.0 and c.offsocket_ns == 0.0

    def test_snapshot_is_independent_copy(self):
        c = CoreCounters(accesses=5)
        snap = c.snapshot()
        c.accesses = 99
        assert snap.accesses == 5


class TestSocketCounters:
    def test_aggregates(self):
        s = SocketCounters(
            cores=[CoreCounters(accesses=10, l3_misses=2), CoreCounters(accesses=5)],
            link_fill_bytes=128,
            elapsed_ns=1000.0,
        )
        assert s.total_accesses == 15
        assert s.total_l3_misses == 2
        assert s.total_bandwidth_Bps(64) == pytest.approx(128 / 1e-6)

    def test_link_utilization_clamped(self):
        s = SocketCounters(link_busy_ns=500.0, elapsed_ns=1000.0)
        assert s.link_utilization() == pytest.approx(0.5)
        assert SocketCounters(elapsed_ns=0.0).link_utilization() == 0.0

    def test_by_core_keys(self):
        s = SocketCounters(cores=[CoreCounters(), CoreCounters()])
        assert set(s.by_core()) == {0, 1}
