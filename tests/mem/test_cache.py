"""Reference SetAssociativeCache semantics."""

import pytest

from repro.config import CacheGeometry
from repro.mem import SetAssociativeCache

#: 4 sets x 2 ways x 64B lines = 512 B; line addresses used directly.
GEOM = CacheGeometry(512, 64, 2, name="test")


def make(policy="lru", track_owner=False):
    return SetAssociativeCache(GEOM, policy=policy, track_owner=track_owner)


def line(set_idx, tag):
    """Compose a line address mapping to a given set with a given tag."""
    return (tag << 2) | set_idx  # 4 sets -> 2 set bits


class TestBasicHitMiss:
    def test_first_access_misses_then_hits(self):
        c = make()
        assert not c.access(line(0, 1)).hit
        assert c.access(line(0, 1)).hit
        assert c.stats.accesses == 2
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_distinct_sets_do_not_conflict(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(1, 1))
        assert c.access(line(0, 1)).hit
        assert c.access(line(1, 1)).hit

    def test_set_and_tag_split(self):
        c = make()
        s, t = c.set_and_tag(line(3, 7))
        assert (s, t) == (3, 7)

    def test_miss_rate_property(self):
        c = make()
        for tag in range(4):
            c.access(line(0, tag))
        assert c.stats.miss_rate == 1.0


class TestEviction:
    def test_lru_evicts_oldest(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(0, 2))
        res = c.access(line(0, 3))  # set 0 full (2 ways): evict tag 1
        assert res.evicted_line == line(0, 1)
        assert not c.probe(line(0, 1))
        assert c.probe(line(0, 2)) and c.probe(line(0, 3))

    def test_hit_refreshes_recency(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(0, 2))
        c.access(line(0, 1))  # 2 is now LRU
        res = c.access(line(0, 3))
        assert res.evicted_line == line(0, 2)

    def test_eviction_counts(self):
        c = make()
        for tag in range(5):
            c.access(line(0, tag))
        assert c.stats.evictions == 3


class TestDirtyAndWriteback:
    def test_dirty_eviction_counts_writeback(self):
        c = make()
        c.access(line(0, 1), is_write=True)
        c.access(line(0, 2))
        c.access(line(0, 3))  # evicts dirty tag 1
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(0, 2))
        res = c.access(line(0, 3))
        assert not res.evicted_dirty
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(0, 1), is_write=True)
        c.access(line(0, 2))
        c.access(line(0, 3))
        assert c.stats.writebacks == 1


class TestInstallProbeInvalidate:
    def test_install_does_not_count_access(self):
        c = make()
        c.install(line(0, 1))
        assert c.stats.accesses == 0
        assert c.probe(line(0, 1))

    def test_install_refreshes_existing(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(0, 2))
        c.install(line(0, 1))  # refresh: 2 becomes LRU
        assert c.access(line(0, 3)).evicted_line == line(0, 2)

    def test_invalidate(self):
        c = make()
        c.access(line(0, 1))
        assert c.invalidate(line(0, 1))
        assert not c.probe(line(0, 1))
        assert not c.invalidate(line(0, 1))

    def test_probe_is_non_mutating(self):
        c = make()
        c.access(line(0, 1))
        c.access(line(0, 2))
        c.probe(line(0, 1))  # must NOT refresh recency
        assert c.access(line(0, 3)).evicted_line == line(0, 1)


class TestOccupancyAndOwner:
    def test_resident_lines_and_occupancy(self):
        c = make()
        addresses = {line(0, 1), line(1, 2), line(2, 3)}
        for a in addresses:
            c.access(a)
        assert set(c.resident_lines()) == addresses
        assert c.occupancy() == 3

    def test_owner_attribution(self):
        c = make(track_owner=True)
        c.access(line(0, 1), owner=7)
        c.access(line(1, 1), owner=7)
        c.access(line(2, 1), owner=3)
        assert c.occupancy_by_owner() == {7: 2, 3: 1}

    def test_owner_changes_on_touch(self):
        c = make(track_owner=True)
        c.access(line(0, 1), owner=1)
        c.access(line(0, 1), owner=2)
        assert c.occupancy_by_owner() == {2: 1}

    def test_owner_requires_tracking(self):
        c = make()
        with pytest.raises(ValueError):
            c.occupancy_by_owner()

    def test_flush_empties_but_keeps_stats(self):
        c = make()
        c.access(line(0, 1))
        c.flush()
        assert c.occupancy() == 0
        assert c.stats.accesses == 1


class TestPolicyPluggability:
    def test_fifo_policy_by_name(self):
        c = make(policy="fifo")
        c.access(line(0, 1))
        c.access(line(0, 2))
        c.access(line(0, 1))  # FIFO: does not refresh
        assert c.access(line(0, 3)).evicted_line == line(0, 1)

    def test_policy_shape_mismatch_raises(self):
        from repro.mem import LRUPolicy

        with pytest.raises(ValueError, match="shape"):
            SetAssociativeCache(GEOM, policy=LRUPolicy(8, 8))
