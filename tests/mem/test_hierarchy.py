"""Reference multi-level hierarchy composition."""

import pytest

from repro.mem import DRAM, L1, L2, L3, SocketHierarchy


@pytest.fixture
def hier(tiny):
    return SocketHierarchy(tiny)


class TestAccessPath:
    def test_cold_access_goes_to_dram(self, hier):
        assert hier.access(0, 100).level == DRAM

    def test_immediate_reuse_hits_l1(self, hier):
        hier.access(0, 100)
        assert hier.access(0, 100).level == L1

    def test_l2_hit_after_l1_eviction(self, hier, tiny):
        hier.access(0, 100)
        # Evict line 100 from L1 (2-way x 8 sets at tiny scale) by
        # touching enough conflicting lines; they stay in the larger L2.
        n_l1_sets = tiny.l1.n_sets
        for i in range(1, 3):
            hier.access(0, 100 + i * n_l1_sets)
        assert hier.access(0, 100).level == L2

    def test_l3_hit_after_private_eviction(self, hier, tiny):
        hier.access(0, 100)
        # Blow both private levels with conflicting lines; the shared L3
        # (4-way, larger) keeps the line.
        n_l2_sets = tiny.l2.n_sets
        for i in range(1, 5):
            hier.access(0, 100 + i * n_l2_sets * tiny.l3.n_sets)
        result = hier.access(0, 100)
        assert result.level in (L3, DRAM)

    def test_shared_l3_serves_other_core(self, hier):
        """Core 1 can hit a line core 0 fetched: the L3 is shared, the
        private levels are not."""
        hier.access(0, 100)
        res = hier.access(1, 100)
        assert res.level == L3

    def test_private_levels_are_private(self, hier):
        hier.access(0, 100)
        hier.access(1, 100)  # L3 hit, fills core 1 privates
        assert hier.access(0, 100).level == L1
        assert hier.access(1, 100).level == L1


class TestEvictionReporting:
    def test_l3_eviction_reported_with_dirtiness(self, tiny):
        hier = SocketHierarchy(tiny)
        n_l3_lines = tiny.l3.n_lines
        n_sets = tiny.l3.n_sets
        # Fill one L3 set (4 ways) with writes, then overflow it.
        lines = [7 + i * n_sets for i in range(tiny.l3.ways + 1)]
        for a in lines[:-1]:
            hier.access(0, a, is_write=True)
        res = hier.access(0, lines[-1])
        assert res.level == DRAM
        assert res.l3_evicted_line == lines[0]
        assert res.l3_evicted_dirty

    def test_owner_tracking_through_hierarchy(self, tiny):
        hier = SocketHierarchy(tiny, track_owner=True)
        hier.access(2, 500)
        assert hier.l3.occupancy_by_owner() == {2: 1}
