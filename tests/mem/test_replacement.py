"""Replacement policies on hand-checkable traces."""

import pytest

from repro.mem import (
    FIFOPolicy,
    LRUPolicy,
    POLICIES,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(1, 3)
        for way in (0, 1, 2):
            p.on_fill(0, way)
        assert p.victim(0) == 0
        p.on_hit(0, 0)  # refresh 0 -> oldest becomes 1
        assert p.victim(0) == 1

    def test_refill_refreshes(self):
        p = LRUPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_fill(0, 0)  # re-install way 0
        assert p.victim(0) == 1

    def test_sets_are_independent(self):
        p = LRUPolicy(2, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_fill(1, 1)
        p.on_fill(1, 0)
        assert p.victim(0) == 0
        assert p.victim(1) == 1


class TestFIFO:
    def test_hit_does_not_refresh(self):
        p = FIFOPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)  # FIFO ignores hits
        assert p.victim(0) == 0

    def test_fill_order_respected(self):
        p = FIFOPolicy(1, 3)
        for way in (2, 0, 1):
            p.on_fill(0, way)
        assert p.victim(0) == 2


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomPolicy(1, 8, seed=42)
        b = RandomPolicy(1, 8, seed=42)
        assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]

    def test_victims_in_range(self):
        p = RandomPolicy(1, 4, seed=1)
        assert all(0 <= p.victim(0) < 4 for _ in range(100))


class TestTreePLRU:
    def test_victim_in_range_non_pow2_ways(self):
        p = TreePLRUPolicy(1, 20)  # the paper's L3 associativity
        for way in range(20):
            p.on_fill(0, way)
        assert 0 <= p.victim(0) < 20

    def test_points_away_from_most_recent(self):
        p = TreePLRUPolicy(1, 4)
        p.on_hit(0, 0)
        assert p.victim(0) != 0

    def test_approximates_lru_on_sequential_touch(self):
        p = TreePLRUPolicy(1, 4)
        for way in (0, 1, 2, 3):
            p.on_hit(0, way)
        # After touching 0..3 in order the victim should be in the old half.
        assert p.victim(0) in (0, 1)


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in POLICIES:
            p = make_policy(name, 4, 4)
            assert p.n_sets == 4 and p.ways == 4

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("belady", 4, 4)
