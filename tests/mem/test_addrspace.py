"""Address-space allocator and Buffer index math."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.mem import AddressSpace


class TestAllocation:
    def test_buffers_never_overlap(self):
        space = AddressSpace(line_bytes=64)
        bufs = [space.alloc(1000, elem_bytes=4) for _ in range(10)]
        for i, a in enumerate(bufs):
            for b in bufs[i + 1 :]:
                assert a.end <= b.base or b.end <= a.base

    def test_buffers_never_share_lines(self):
        """A guard line separates allocations (the paper's threads must
        not share cache lines)."""
        space = AddressSpace(line_bytes=64)
        a = space.alloc(100, elem_bytes=4)
        b = space.alloc(100, elem_bytes=4)
        a_lines = set(range(a.base_line, a.base_line + a.n_lines))
        b_lines = set(range(b.base_line, b.base_line + b.n_lines))
        assert not (a_lines & b_lines)

    def test_base_is_line_aligned(self):
        space = AddressSpace(line_bytes=64)
        space.alloc(33, elem_bytes=1)
        b = space.alloc(100, elem_bytes=4)
        assert b.base % 64 == 0

    def test_rejects_zero_size(self):
        with pytest.raises(AllocationError):
            AddressSpace().alloc(0)

    def test_rejects_indivisible_elem_size(self):
        with pytest.raises(AllocationError):
            AddressSpace().alloc(10, elem_bytes=3)

    def test_exhaustion(self):
        space = AddressSpace(line_bytes=64, capacity_bytes=4096)
        with pytest.raises(AllocationError, match="exhausted"):
            for _ in range(100):
                space.alloc(1024)

    def test_alloc_elems(self):
        b = AddressSpace().alloc_elems(100, elem_bytes=8)
        assert b.size_bytes == 800 and b.n_elems == 100

    def test_allocations_listing(self):
        space = AddressSpace()
        a = space.alloc(64, label="a")
        b = space.alloc(64, label="b")
        assert [x.label for x in space.allocations()] == ["a", "b"]


class TestBufferIndexMath:
    def test_line_of_index_matches_vectorised(self):
        space = AddressSpace(line_bytes=64)
        buf = space.alloc(4096, elem_bytes=4)
        idx = np.arange(0, buf.n_elems, 7)
        vec = buf.lines_of_indices(idx)
        scalar = [buf.line_of_index(int(i)) for i in idx]
        assert vec.tolist() == scalar

    def test_sixteen_ints_per_line(self):
        space = AddressSpace(line_bytes=64)
        buf = space.alloc(4096, elem_bytes=4)
        assert buf.line_of_index(0) == buf.line_of_index(15)
        assert buf.line_of_index(0) != buf.line_of_index(16)

    def test_out_of_range_index_raises(self):
        buf = AddressSpace().alloc(64, elem_bytes=4)
        with pytest.raises(IndexError):
            buf.line_of_index(16)
        with pytest.raises(IndexError):
            buf.line_of_index(-1)

    def test_sequential_lines_cover_buffer(self):
        buf = AddressSpace(line_bytes=64).alloc(640, elem_bytes=4)
        lines = buf.sequential_lines()
        assert len(lines) == buf.n_lines == 10
        assert lines[0] == buf.base_line


@given(
    sizes=st.lists(
        st.integers(min_value=4, max_value=10_000).map(lambda n: n * 4),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_no_line_sharing_ever(sizes):
    space = AddressSpace(line_bytes=64)
    seen_lines: set[int] = set()
    for size in sizes:
        buf = space.alloc(size, elem_bytes=4)
        lines = set(range(buf.base_line, buf.base_line + buf.n_lines))
        assert not (lines & seen_lines)
        seen_lines |= lines
