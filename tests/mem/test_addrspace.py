"""Address-space allocator and Buffer index math."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.mem import AddressSpace


class TestAllocation:
    def test_buffers_never_overlap(self):
        space = AddressSpace(line_bytes=64)
        bufs = [space.alloc(1000, elem_bytes=4) for _ in range(10)]
        for i, a in enumerate(bufs):
            for b in bufs[i + 1 :]:
                assert a.end <= b.base or b.end <= a.base

    def test_buffers_never_share_lines(self):
        """A guard line separates allocations (the paper's threads must
        not share cache lines)."""
        space = AddressSpace(line_bytes=64)
        a = space.alloc(100, elem_bytes=4)
        b = space.alloc(100, elem_bytes=4)
        a_lines = set(range(a.base_line, a.base_line + a.n_lines))
        b_lines = set(range(b.base_line, b.base_line + b.n_lines))
        assert not (a_lines & b_lines)

    def test_base_is_line_aligned(self):
        space = AddressSpace(line_bytes=64)
        space.alloc(33, elem_bytes=1)
        b = space.alloc(100, elem_bytes=4)
        assert b.base % 64 == 0

    def test_rejects_zero_size(self):
        with pytest.raises(AllocationError):
            AddressSpace().alloc(0)

    def test_rejects_indivisible_elem_size(self):
        with pytest.raises(AllocationError):
            AddressSpace().alloc(10, elem_bytes=3)

    def test_exhaustion(self):
        space = AddressSpace(line_bytes=64, capacity_bytes=4096)
        with pytest.raises(AllocationError, match="exhausted"):
            for _ in range(100):
                space.alloc(1024)

    def test_alloc_elems(self):
        b = AddressSpace().alloc_elems(100, elem_bytes=8)
        assert b.size_bytes == 800 and b.n_elems == 100

    def test_allocations_listing(self):
        space = AddressSpace()
        a = space.alloc(64, label="a")
        b = space.alloc(64, label="b")
        assert [x.label for x in space.allocations()] == ["a", "b"]


class TestBufferIndexMath:
    def test_line_of_index_matches_vectorised(self):
        space = AddressSpace(line_bytes=64)
        buf = space.alloc(4096, elem_bytes=4)
        idx = np.arange(0, buf.n_elems, 7)
        vec = buf.lines_of_indices(idx)
        scalar = [buf.line_of_index(int(i)) for i in idx]
        assert vec.tolist() == scalar

    def test_sixteen_ints_per_line(self):
        space = AddressSpace(line_bytes=64)
        buf = space.alloc(4096, elem_bytes=4)
        assert buf.line_of_index(0) == buf.line_of_index(15)
        assert buf.line_of_index(0) != buf.line_of_index(16)

    def test_out_of_range_index_raises(self):
        buf = AddressSpace().alloc(64, elem_bytes=4)
        with pytest.raises(IndexError):
            buf.line_of_index(16)
        with pytest.raises(IndexError):
            buf.line_of_index(-1)

    def test_sequential_lines_cover_buffer(self):
        buf = AddressSpace(line_bytes=64).alloc(640, elem_bytes=4)
        lines = buf.sequential_lines()
        assert len(lines) == buf.n_lines == 10
        assert lines[0] == buf.base_line


@given(
    sizes=st.lists(
        st.integers(min_value=4, max_value=10_000).map(lambda n: n * 4),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_no_line_sharing_ever(sizes):
    space = AddressSpace(line_bytes=64)
    seen_lines: set[int] = set()
    for size in sizes:
        buf = space.alloc(size, elem_bytes=4)
        lines = set(range(buf.base_line, buf.base_line + buf.n_lines))
        assert not (lines & seen_lines)
        seen_lines |= lines


class TestFailedAllocLeavesStateIntact:
    """Regression: a failed alloc must not move the bump pointer (the
    capacity check used to run *after* committing ``_next``)."""

    def test_used_bytes_unchanged_after_failure(self):
        space = AddressSpace(line_bytes=64, capacity_bytes=4096)
        space.alloc(1024)
        used = space.used_bytes
        n_allocs = len(space.allocations())
        with pytest.raises(AllocationError, match="exhausted"):
            space.alloc(1 << 20)
        assert space.used_bytes == used
        assert len(space.allocations()) == n_allocs

    def test_allocator_usable_after_failure(self):
        space = AddressSpace(line_bytes=64, capacity_bytes=4096)
        with pytest.raises(AllocationError):
            space.alloc(1 << 20)
        b = space.alloc(512)  # plenty of room left: must succeed
        assert b.size_bytes == 512
        # And the buffer sits exactly where it would have without the
        # failed attempt in between.
        fresh = AddressSpace(line_bytes=64, capacity_bytes=4096).alloc(512)
        assert b.base == fresh.base


class TestPagePlacement:
    def test_single_domain_homes_everything_on_zero(self):
        space = AddressSpace(line_bytes=64)
        b = space.alloc(4096)
        homes = space.homes_of_lines(b.sequential_lines())
        assert (homes == 0).all()

    def test_first_touch_follows_touch_socket(self):
        space = AddressSpace(line_bytes=64, n_domains=2, page_bytes=1024)
        a = space.alloc(4096)
        space.set_touch_socket(1)
        b = space.alloc(4096)
        assert (space.homes_of_lines(a.sequential_lines()) == 0).all()
        homes_b = space.homes_of_lines(b.sequential_lines())
        # All of b's pages except possibly the first (which can straddle
        # a's last, already-homed page) belong to socket 1.
        assert (homes_b[space.page_bytes // 64:] == 1).all()
        assert homes_b.max() == 1

    def test_straddling_page_keeps_first_home(self):
        """First-touch is per *page*: the second allocation cannot
        re-home a page the first already touched."""
        space = AddressSpace(line_bytes=64, n_domains=2, page_bytes=1024)
        a = space.alloc(256)  # well inside page 0
        space.set_touch_socket(1)
        b = space.alloc(256)  # also page 0
        assert space.home_of_line(b.base_line) == 0

    def test_interleave_round_robins_pages(self):
        space = AddressSpace(
            line_bytes=64, n_domains=2, placement="interleave", page_bytes=1024
        )
        b = space.alloc(8 * 1024)
        lines = b.sequential_lines()
        pages = lines >> (10 - 6)  # page_shift - line_shift
        homes = space.homes_of_lines(lines)
        assert (homes == pages % 2).all()
        assert set(homes.tolist()) == {0, 1}

    def test_explicit_home_overrides_policy(self):
        space = AddressSpace(line_bytes=64, n_domains=4, page_bytes=1024)
        b = space.alloc(4096, home=3)
        homes = space.homes_of_lines(b.sequential_lines())
        assert (homes == 3).all()

    def test_never_allocated_pages_home_zero(self):
        space = AddressSpace(line_bytes=64, n_domains=2, page_bytes=1024)
        assert space.home_of_line(1 << 40) == 0
        far = np.array([1 << 40, 1 << 41], dtype=np.int64)
        assert (space.homes_of_lines(far) == 0).all()

    def test_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            AddressSpace(n_domains=0)
        with pytest.raises(ConfigError):
            AddressSpace(placement="random")
        with pytest.raises(ConfigError):
            AddressSpace(line_bytes=64, page_bytes=32)  # page < line
        with pytest.raises(ConfigError):
            AddressSpace(page_bytes=3000)  # not a power of two
        space = AddressSpace(n_domains=2)
        with pytest.raises(ConfigError):
            space.set_touch_socket(2)
        with pytest.raises(ConfigError):
            space.alloc(64, home=5)

    def test_page_table_grows_on_demand(self):
        space = AddressSpace(line_bytes=64, n_domains=2, page_bytes=1024)
        space.set_touch_socket(1)
        big = space.alloc(16 * 1024 * 1024)  # far beyond the initial table
        assert space.home_of_line(big.base_line + big.n_lines - 1) == 1
