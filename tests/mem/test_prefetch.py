"""Stride prefetcher: detection, continuation, defeat by randomness."""

import numpy as np

from repro.config import PrefetchConfig
from repro.mem import StridePrefetcher


def make(degree=4, detect_after=2, n_streams=8, enabled=True):
    return StridePrefetcher(
        PrefetchConfig(
            enabled=enabled, degree=degree, detect_after=detect_after, n_streams=n_streams
        )
    )


class TestDetection:
    def test_confirms_after_detect_after_strides(self):
        pf = make(degree=4, detect_after=2)
        assert pf.observe_miss(100) == []
        assert pf.observe_miss(107) == []  # first stride seen
        out = pf.observe_miss(114)  # second identical stride -> confirm
        assert out == [121, 128, 135, 142]

    def test_batch_respects_degree(self):
        pf = make(degree=2)
        pf.observe_miss(0)
        pf.observe_miss(5)
        assert pf.observe_miss(10) == [15, 20]

    def test_negative_stride_streams(self):
        pf = make(degree=3)
        pf.observe_miss(100)
        pf.observe_miss(90)
        assert pf.observe_miss(80) == [70, 60, 50]

    def test_zero_stride_never_confirms(self):
        pf = make()
        for _ in range(10):
            assert pf.observe_miss(42) == []


class TestContinuation:
    def test_expected_miss_continues_stream(self):
        """After a batch, the next miss at L+(d+1)s re-stages immediately
        (steady state: one miss per degree+1 lines)."""
        pf = make(degree=4, detect_after=2)
        pf.observe_miss(0)
        pf.observe_miss(7)
        pf.observe_miss(14)  # confirm, stages 21..42, expects 49
        out = pf.observe_miss(49)
        assert out == [56, 63, 70, 77]

    def test_unexpected_miss_breaks_stream(self):
        pf = make(degree=4, detect_after=2)
        pf.observe_miss(0)
        pf.observe_miss(7)
        pf.observe_miss(14)
        assert pf.observe_miss(1000) == []  # wrap/jump: re-detection needed

    def test_streams_are_independent(self):
        pf = make(degree=2, detect_after=2)
        # Interleave two streams with different strides on distinct ids.
        seq_a = [0, 7, 14, 21]
        seq_b = [1000, 1003, 1006, 1009]
        outs_a, outs_b = [], []
        for a, b in zip(seq_a, seq_b):
            outs_a.append(pf.observe_miss(a, stream_id=0))
            outs_b.append(pf.observe_miss(b, stream_id=1))
        assert outs_a[2] == [21, 28]
        assert outs_b[2] == [1009, 1012]


class TestDefeatAndLimits:
    def test_random_access_never_confirms(self):
        """The paper's CSThr design point: random access defeats the
        prefetcher."""
        pf = make(degree=4)
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 100_000, size=2000).tolist():
            assert pf.observe_miss(a) == []

    def test_disabled_returns_nothing(self):
        pf = make(enabled=False)
        for a in (0, 7, 14, 21, 28):
            assert pf.observe_miss(a) == []

    def test_degree_zero_returns_nothing(self):
        pf = StridePrefetcher(PrefetchConfig(enabled=True, degree=0))
        for a in (0, 7, 14, 21):
            assert pf.observe_miss(a) == []

    def test_stream_table_is_bounded(self):
        pf = make(n_streams=4)
        for sid in range(100):
            pf.observe_miss(sid * 1000, stream_id=sid)
        assert len(pf._streams) <= 4

    def test_reset(self):
        pf = make()
        pf.observe_miss(0)
        pf.observe_miss(7)
        pf.observe_miss(14)
        pf.reset()
        assert pf.issued_batches == 0
        assert pf.observe_miss(21) == []  # state gone
