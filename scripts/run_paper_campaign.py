"""Run every experiment in paper mode and persist records.

Crash-safe: each completed experiment is appended to a JSONL journal
(atomic single-line appends), so a campaign killed mid-run restarts
with ``--resume`` and skips the experiments that already finished.
Point-level resume inside an experiment is available independently via
``REPRO_JOURNAL`` / ``REPRO_CACHE_DIR`` (see README, "Chaos drills and
crash-safe campaigns").
"""
import argparse
import sys
import time
import traceback
from pathlib import Path

import repro.experiments as ex
from repro.core.journal import append_jsonl, iter_jsonl
from repro.experiments import ablations
from repro.experiments.common import DEFAULT_RESULTS_DIR
from repro.obs import chrome_trace, configure_tracer, tracer, write_chrome_trace
from repro.obs.tracer import span as trace_span

RUNS = [
    ("calibration", ex.run_calibration),
    ("fig5", ex.run_fig5),
    ("fig7_fig8", ex.run_fig7_fig8),
    ("fig9", ex.run_fig9),
    ("fig11", ex.run_fig11),
    ("fig10", ex.run_fig10),
    ("fig12", ex.run_fig12),
    ("ablation_prefetch", ablations.run_prefetch_ablation),
    ("ablation_replacement", ablations.run_replacement_ablation),
    ("ablation_scale", ablations.run_scale_ablation),
    ("ablation_bwthr_capacity", ablations.run_bwthr_capacity_ablation),
    ("fig6", ex.run_fig6),   # the big one last
]


def completed_experiments(journal: Path) -> set:
    return {
        rec["name"]
        for rec in iter_jsonl(journal)
        if rec.get("event") == "experiment" and "name" in rec
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments already recorded in the campaign journal",
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="campaign journal path "
        "(default: <results>/paper/campaign_journal.jsonl)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span trace: crash-safe event log at FILE.jsonl, "
        "Chrome/Perfetto JSON exported to FILE at the end",
    )
    args = parser.parse_args(argv)
    if args.trace:
        configure_tracer(Path(str(args.trace) + ".jsonl"))

    out_dir = DEFAULT_RESULTS_DIR / "paper"
    journal = Path(args.journal) if args.journal else out_dir / "campaign_journal.jsonl"
    journal.parent.mkdir(parents=True, exist_ok=True)
    done = completed_experiments(journal) if args.resume else set()
    if journal.exists() and journal.stat().st_size > 0 and not args.resume:
        print(
            f"journal {journal} already exists; pass --resume to continue "
            "that campaign, or delete the file to start over",
            file=sys.stderr,
        )
        return 2
    if done:
        print(f"resuming: {len(done)} experiment(s) already journaled", flush=True)

    failures = 0
    for name, fn in RUNS:
        if name in done:
            print(f"[{name}] skipped (journaled)", flush=True)
            continue
        t0 = time.perf_counter()
        try:
            with trace_span("experiment", cat="experiment", experiment=name):
                rec = fn("paper")
            path = rec.save(out_dir)
            append_jsonl(journal, {
                "event": "experiment", "name": name, "path": str(path),
            })
            print(f"[{name}] done in {time.perf_counter()-t0:.0f}s -> {path}", flush=True)
            for n in rec.notes:
                print(f"   {n}", flush=True)
        except Exception:
            failures += 1
            print(f"[{name}] FAILED after {time.perf_counter()-t0:.0f}s", flush=True)
            traceback.print_exc()
    append_jsonl(journal, {"event": "campaign_pass", "failures": failures})
    if args.trace:
        t = tracer()
        t.finish()
        out = write_chrome_trace(Path(args.trace), chrome_trace(t.events))
        print(f"trace written to {out} (event log: {t.path})", flush=True)
    print("CAMPAIGN COMPLETE", flush=True)
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
