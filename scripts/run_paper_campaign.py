"""Run every experiment in paper mode and persist records."""
import time, traceback
import repro.experiments as ex
from repro.experiments import ablations
from repro.experiments.common import DEFAULT_RESULTS_DIR

RUNS = [
    ("calibration", ex.run_calibration),
    ("fig5", ex.run_fig5),
    ("fig7_fig8", ex.run_fig7_fig8),
    ("fig9", ex.run_fig9),
    ("fig11", ex.run_fig11),
    ("fig10", ex.run_fig10),
    ("fig12", ex.run_fig12),
    ("ablation_prefetch", ablations.run_prefetch_ablation),
    ("ablation_replacement", ablations.run_replacement_ablation),
    ("ablation_scale", ablations.run_scale_ablation),
    ("ablation_bwthr_capacity", ablations.run_bwthr_capacity_ablation),
    ("fig6", ex.run_fig6),   # the big one last
]
for name, fn in RUNS:
    t0 = time.perf_counter()
    try:
        rec = fn("paper")
        path = rec.save(DEFAULT_RESULTS_DIR / "paper")
        print(f"[{name}] done in {time.perf_counter()-t0:.0f}s -> {path}", flush=True)
        for n in rec.notes:
            print(f"   {n}", flush=True)
    except Exception:
        print(f"[{name}] FAILED after {time.perf_counter()-t0:.0f}s", flush=True)
        traceback.print_exc()
print("CAMPAIGN COMPLETE", flush=True)
