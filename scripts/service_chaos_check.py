"""Service chaos drill: SIGKILL agents mid-campaign, lose nothing.

The measurement service's whole promise in one executable check:

1. run every job spec serially in-process (no service, no cache, no
   journal) -> per-job reference JSON;
2. submit the same specs to a fresh service root and drain them with a
   supervised fleet of three agents on a short lease;
3. once the fleet has journaled a few points, SIGKILL two of the three
   agents; the supervisor must requeue their expired leases, restart
   the slots, and finish the drain;
4. assert: every job completed (none dead-lettered), every result is
   **byte-identical** to its serial reference, the broker log holds
   **exactly one completion per job**, and every requeued job's
   completing attempt reports at least as many journal hits as the dead
   agent had journaled — the killed work was *resumed*, not redone
   (no point executed its side effects twice).

Exit status 0 = the promise holds. Used by the ``chaos`` CI job and
runnable locally: ``PYTHONPATH=src python scripts/service_chaos_check.py``.
"""
from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service import JobSpec, Supervisor  # noqa: E402
from repro.service.agent import sweep_payload  # noqa: E402
from repro.service.broker import DONE  # noqa: E402

#: The drill's workload mix: enough points per job that two SIGKILLs
#: reliably land mid-campaign, varied enough to exercise distinct specs.
def drill_specs(points: int, warmup: int, measure: int):
    common = dict(preset="tiny", kind="cs", ks=tuple(range(points)),
                  warmup_accesses=warmup, measure_accesses=measure)
    return [
        JobSpec(app="probe", seed=7, **common),
        JobSpec(app="probe", seed=8, app_params={"dist": "zipf"}, **common),
        JobSpec(app="stream", seed=9, **common),
        JobSpec(app="hotcold", seed=10, **common),
    ]


def reference_payloads(specs) -> list:
    """Serial, service-free ground truth for each spec."""
    out = []
    for spec in specs:
        sweep = spec.build_measurement().sweep(spec.kind, spec.ks)
        out.append(json.dumps(sweep_payload(sweep), sort_keys=True, indent=1))
    return out


def journaled_points(root: Path) -> dict:
    """job id -> durably journaled point count right now."""
    counts = {}
    jdir = root / "journals"
    if not jdir.is_dir():
        return counts
    for path in jdir.glob("*.jsonl"):
        counts[path.stem] = sum(
            1 for line in path.read_bytes().splitlines()
            if b'"event":"point"' in line
        )
    return counts


def completions_per_job(root: Path) -> dict:
    counts = {}
    for line in (root / "queue.jsonl").read_bytes().splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if event.get("event") == "complete":
            counts[event["id"]] = counts.get(event["id"], 0) + 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=4,
                        help="interference points per job (the tiny "
                        "preset's 4 cores cap k at 3)")
    parser.add_argument("--warmup", type=int, default=1_500_000)
    parser.add_argument("--measure", type=int, default=1_000_000)
    parser.add_argument("--kill-after-points", type=int, default=2,
                        help="SIGKILL two agents once this many points "
                        "are journaled fleet-wide")
    parser.add_argument("--lease-s", type=float, default=1.5)
    parser.add_argument("--timeout-s", type=float, default=600.0)
    args = parser.parse_args(argv)

    specs = drill_specs(args.points, args.warmup, args.measure)

    print(f"[1/4] serial reference run ({len(specs)} jobs x "
          f"{args.points} points) ...", flush=True)
    refs = reference_payloads(specs)

    with tempfile.TemporaryDirectory(prefix="repro-service-chaos-") as tmp:
        root = Path(tmp)
        print("[2/4] submitting to a fresh service root ...", flush=True)
        sup = Supervisor(root, n_agents=3, lease_s=args.lease_s,
                         retry_budget=5, poll_s=0.05)
        job_ids = [sup.broker.submit(s, tenant="chaos") for s in specs]

        print("[3/4] draining with 3 agents, killing 2 mid-campaign ...",
              flush=True)
        sup.start()
        deadline = time.monotonic() + args.timeout_s
        killed = False
        at_kill: dict = {}
        while time.monotonic() < deadline:
            sup.step()
            if sup.broker.drained():
                break
            if not killed:
                counts = journaled_points(root)
                if sum(counts.values()) >= args.kill_after_points:
                    at_kill = counts
                    pids = [sup.kill_agent(0), sup.kill_agent(1)]
                    print(f"  SIGKILLed agents {pids} with "
                          f"{sum(counts.values())} points journaled",
                          flush=True)
                    killed = True
            time.sleep(0.02)
        drained = sup.broker.drained()
        sup.stop()
        if not drained:
            print("FAIL: queue not drained before the deadline",
                  file=sys.stderr)
            return 1
        if not killed:
            print("  note: fleet drained before the kill threshold; "
                  "rerun with more --points for a sharper drill",
                  flush=True)

        print("[4/4] verifying exactly-once completion ...", flush=True)
        failures = []
        completions = completions_per_job(root)
        requeued = 0
        for spec, job_id, ref in zip(specs, job_ids, refs):
            job = sup.broker.job(job_id)
            if job.state != DONE:
                failures.append(f"{job_id}: state={job.state}, "
                                f"errors={job.errors}")
                continue
            if completions.get(job_id) != 1:
                failures.append(f"{job_id}: {completions.get(job_id, 0)} "
                                "completion events (want exactly 1)")
            got = Path(job.result_path).read_text()
            if got != ref:
                failures.append(f"{job_id}: result differs from the "
                                "serial reference")
            if job.attempts > 1:
                requeued += 1
                hits = job.telemetry.get("journal_hits", 0)
                floor = at_kill.get(job_id, 0)
                if hits < floor:
                    failures.append(
                        f"{job_id}: resumed attempt reports {hits} journal "
                        f"hits < {floor} points the dead agent journaled "
                        "(work was redone, not resumed)"
                    )
        if killed and requeued == 0:
            print("  note: kills landed between leases (no job requeued); "
                  "exactly-once still verified via completion counts",
                  flush=True)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        stats = sup.fleet_stats()
        print(f"OK: {len(specs)} jobs bit-identical to the serial "
              f"reference, exactly one completion each "
              f"(kill {'exercised' if killed else 'not reached'}, "
              f"{requeued} requeued, {stats['restarts']} agent restarts)")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
