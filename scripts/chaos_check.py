"""Chaos drill: fault-injected, kill-resumed campaign == clean campaign.

The robustness layer's whole promise in one executable check:

1. run a small capacity sweep cleanly -> reference JSON;
2. run the same sweep under deterministic fault injection
   (``REPRO_FAULT_SEED``: transient faults, hangs, simulated crashes,
   cache corruption) with a crash-safe journal, and SIGKILL the run
   once a couple of points are journaled;
3. re-run the same command with the same journal (resume) — it must
   skip the journaled points and finish;
4. assert the resumed, fault-injected output is **bit-identical** to
   the clean reference.

Exit status 0 = the promise holds. Used by the ``chaos`` CI job and
runnable locally: ``PYTHONPATH=src python scripts/chaos_check.py``.
"""
from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
FAULT_SEED = "20140604"          # deterministic chaos plan
KS = [0, 1, 2, 3, 4, 5]


def run_sweep_to_json(out_path: Path) -> None:
    """Child mode: run the sweep with the env-configured runner and dump
    every observable point field with full float precision."""
    from repro.config import xeon20mb
    from repro.core import ActiveMeasurement
    from repro.units import MiB
    from repro.workloads import ProbabilisticBenchmark, UniformDist

    am = ActiveMeasurement(
        xeon20mb(),
        lambda: ProbabilisticBenchmark(UniformDist(), 50 * MiB),
        warmup_accesses=25_000,
        measure_accesses=15_000,
        seed=7,
        workload_spec="chaos-drill-probe",
    )
    sweep = am.capacity_sweep(ks=KS)
    payload = [
        {
            "kind": p.kind,
            "k": p.k,
            "makespan_ns": repr(p.makespan_ns),
            "main_cores": p.main_cores,
            "l3_miss_rates": {str(c): repr(v) for c, v in p.l3_miss_rates.items()},
            "bandwidths_Bps": {str(c): repr(v) for c, v in p.bandwidths_Bps.items()},
            "time_per_access_ns": repr(p.time_per_access_ns),
        }
        for p in sweep.points
    ]
    out_path.write_text(json.dumps(payload, sort_keys=True, indent=1))
    tele = am.runner.last_telemetry
    if tele is not None:
        print(f"child telemetry: {tele.summary()}", flush=True)


def child_cmd(out: Path) -> list:
    return [sys.executable, str(Path(__file__).resolve()), "--child", "--out", str(out)]


def child_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # The drill controls its own chaos/journal knobs exclusively.
    for k in ("REPRO_FAULT_SEED", "REPRO_JOURNAL", "REPRO_CACHE_DIR",
              "REPRO_WORKERS", "REPRO_RUNNER_BACKEND"):
        env.pop(k, None)
    env.update(extra)
    return env


def count_journaled_points(journal: Path) -> int:
    if not journal.exists():
        return 0
    return sum(1 for line in journal.read_bytes().splitlines()
               if b'"event":"point"' in line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--kill-after-points", type=int, default=2,
                        help="SIGKILL the chaos run once this many points "
                        "are journaled")
    args = parser.parse_args(argv)

    if args.child:
        run_sweep_to_json(args.out)
        return 0

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmpdir = Path(tmp)
        ref = tmpdir / "reference.json"
        chaotic = tmpdir / "chaotic.json"
        journal = tmpdir / "journal.jsonl"

        print("[1/4] clean reference run ...", flush=True)
        subprocess.run(child_cmd(ref), env=child_env(), check=True)

        print("[2/4] fault-injected run, killing mid-campaign ...", flush=True)
        chaos_env = child_env(
            REPRO_FAULT_SEED=FAULT_SEED,
            REPRO_FAULT_HANG_S="0.2",
            REPRO_JOURNAL=str(journal),
        )
        proc = subprocess.Popen(child_cmd(chaotic), env=chaos_env)
        deadline = time.time() + 300
        killed = False
        while proc.poll() is None and time.time() < deadline:
            if count_journaled_points(journal) >= args.kill_after_points:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=60)
                killed = True
                break
            time.sleep(0.02)
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)
            raise SystemExit("chaos run still alive at deadline; aborting")
        if not killed:
            print("  note: run finished before the kill threshold "
                  f"({count_journaled_points(journal)} points journaled); "
                  "resume will be a pure replay", flush=True)

        print(f"[3/4] resuming from journal "
              f"({count_journaled_points(journal)} points) ...", flush=True)
        subprocess.run(child_cmd(chaotic), env=chaos_env, check=True)

        print("[4/4] comparing outputs ...", flush=True)
        if ref.read_bytes() != chaotic.read_bytes():
            print("FAIL: resumed fault-injected output differs from the "
                  "clean reference", file=sys.stderr)
            return 1
        n = count_journaled_points(journal)
        print(f"OK: bit-identical ({n} journaled points, "
              f"kill {'exercised' if killed else 'not reached'})")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
