#!/usr/bin/env python
"""Offline working-set analysis — the second instrument.

Active Measurement infers capacity use by perturbing a *running*
application. The trace subsystem answers the same question offline: one
Mattson stack-distance pass over a recorded access trace yields the
exact miss-rate-vs-capacity curve, working-set size, and a prediction of
which interference levels would hurt.

This script records traces from the three proxy applications, derives
their curves, and cross-checks MCB's offline working set against the
interference-measured bracket of Fig. 10.

Run:  python examples/offline_trace_analysis.py
"""

from repro import xeon20mb
from repro.analysis import format_table, line_chart
from repro.apps import LuleshProxy, MCBProxy, SpMVProxy
from repro.trace import ReuseProfile, record_trace
from repro.units import MiB, fmt_bytes

N_ACCESSES = 120_000


def main() -> None:
    socket = xeon20mb()
    line = socket.line_bytes
    l3_lines = socket.l3.n_lines

    apps = {
        "MCB (20k particles)": MCBProxy(n_particles=20_000, n_iterations=4),
        "Lulesh 30^3": LuleshProxy(edge=30, n_iterations=4),
        "SpMV/CG 150k rows": SpMVProxy(rows=150_000, n_iterations=4),
    }

    fracs = [0.125, 0.25, 0.5, 0.75, 1.0]
    capacities = [max(1, int(l3_lines * f)) for f in fracs]
    rows = []
    curves = {}
    for name, app in apps.items():
        trace = record_trace(app, N_ACCESSES, socket, seed=3)
        profile = ReuseProfile.from_trace(trace.lines)
        ws_lines = profile.working_set_lines(coverage=0.9)
        ws_paper = socket.unscaled_bytes(ws_lines * line)
        curve = profile.miss_rate_curve(capacities)
        curves[name] = list(curve)
        rows.append(
            (
                name,
                fmt_bytes(ws_paper),
                f"{trace.write_fraction * 100:.0f}%",
                f"{curve[1]:.2f}",
                f"{curve[-1]:.2f}",
            )
        )

    print(format_table(
        ("application", "working set (90%)", "writes",
         "missrate @5MB", "missrate @20MB"),
        rows,
        title="Offline stack-distance characterisation (paper units)",
    ))
    print()
    print(line_chart(
        curves,
        x_labels=[f"{int(f * 20)}MB" for f in fracs],
        title="miss rate vs available L3 (Mattson curves)",
        y_label="miss rate",
    ))
    print()
    print("Cross-check: MCB's 90% working set above should land inside the")
    print("4-7 MB bracket that Fig. 10's interference measurement produced,")
    print("and Lulesh 30^3 should sit near its ~11 MB field footprint.")


if __name__ == "__main__":
    main()
