#!/usr/bin/env python
"""MCB mapping study — Section IV / Figs. 9-10 in miniature.

How should a scheduler place MCB's 24 ranks? This script measures the
execution time of MCB under storage/bandwidth interference for two
process-to-socket mappings and derives per-process resource use — the
information the paper argues "enables more intelligent work scheduling".

Run:  python examples/mcb_mapping_study.py
"""

from repro import calibrate_bandwidth, calibrate_capacity
from repro.analysis import format_table
from repro.apps import MCBProxy
from repro.cluster import ProcessMapping, run_job
from repro.config import xeon20mb_cluster
from repro.experiments.fig10_fig12 import use_tables_from_sweeps
from repro.experiments.appsweeps import interference_sweep

N_RANKS = 24
PARTICLES = 20_000


def main() -> None:
    cluster = xeon20mb_cluster(n_nodes=32)
    socket = cluster.node.socket

    sweeps = {}
    rows = []
    for p in (1, 2, 4):
        mapping = ProcessMapping(cluster, n_ranks=N_RANKS, procs_per_socket=p)
        print(f"mapping p={p}: {mapping.describe()}")

        def build(rank, env, _m=mapping):
            return MCBProxy(
                n_particles=PARTICLES, n_ranks=N_RANKS, rank=rank,
                mapping=_m, comm_env=env, n_iterations=2,
            )

        sweep = interference_sweep(
            cluster, mapping, build,
            cs_ks=range(0, min(6, mapping.free_cores_per_socket + 1)),
            bw_ks=range(0, min(3, mapping.free_cores_per_socket + 1)),
            seed=3,
        )
        sweeps[p] = sweep
        base = sweep["cs"][0]
        for kind in ("cs", "bw"):
            for k, t in sorted(sweep[kind].items()):
                rows.append((f"p={p}", kind, k, t / 1e6, t / base))

    print()
    print(format_table(
        ("mapping", "interference", "k", "time ms", "slowdown"),
        rows,
        title=f"MCB {PARTICLES} particles: execution time vs interference",
        float_fmt="{:.3f}",
    ))

    print()
    print("calibrating availability ladders...")
    cap_calib = calibrate_capacity(socket, warmup_accesses=40_000, measure_accesses=25_000)
    bw_calib = calibrate_bandwidth(socket, saturation_ks=())
    tables = use_tables_from_sweeps(sweeps, cap_calib, bw_calib)

    rows = []
    for p, entry in sorted(tables.items(), key=lambda kv: int(kv[0])):
        cap = entry["capacity_mb"]
        bw = entry.get("bandwidth_GBps", {"lower": float("nan"), "upper": float("nan")})
        rows.append((p, cap["lower"], cap["upper"], bw["lower"], bw["upper"]))
    print(format_table(
        ("p/socket", "cap >= MB", "cap <= MB", "bw >= GB/s", "bw <= GB/s"),
        rows,
        title="Per-process resource use (the Fig. 10 quantities)",
        float_fmt="{:.2f}",
    ))
    print()
    print("Reading: spreading ranks out (p=1) multiplies per-process")
    print("bandwidth use because all communication crosses the memory bus,")
    print("while per-process cache use barely moves — the paper's headline")
    print("scheduling insight for MCB.")


if __name__ == "__main__":
    main()
