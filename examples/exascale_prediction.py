#!/usr/bin/env python
"""Predicting performance on a memory-starved future machine.

Paper contribution 4: "a method to predict how the application's
performance will degrade on alternative, less capable memory
hierarchies". We measure Lulesh's capacity and bandwidth sensitivity on
the (simulated) Xeon20MB, then evaluate the resulting degradation curves
at the per-socket resources of a hypothetical Exascale-era node with 4x
less shared cache and 4x less bandwidth.

Run:  python examples/exascale_prediction.py
"""

from repro import calibrate_bandwidth, calibrate_capacity, exascale_node, xeon20mb
from repro.apps import LuleshProxy
from repro.core import (
    ActiveMeasurement,
    HierarchyPredictor,
    MachineScenario,
    bandwidth_curve,
    capacity_curve,
    render_sweep,
)

EDGE = 32  # per-rank domain; bandwidth-sensitive but not cache-hopeless


def main() -> None:
    socket = xeon20mb()
    print(f"measuring Lulesh {EDGE}^3 sensitivity on {socket.name} ...")

    am = ActiveMeasurement(
        socket,
        lambda: LuleshProxy(edge=EDGE, n_iterations=3),
        warmup_accesses=None,       # finite app: run to completion
        measure_accesses=None,
        seed=11,
    )
    cs = am.capacity_sweep()
    bw = am.bandwidth_sweep()
    print(render_sweep(cs, title=f"Lulesh {EDGE}^3: storage interference"))
    print()
    print(render_sweep(bw, title=f"Lulesh {EDGE}^3: bandwidth interference"))

    print()
    print("calibrating availability ladders ...")
    cap_calib = calibrate_capacity(socket, warmup_accesses=40_000, measure_accesses=25_000)
    bw_calib = calibrate_bandwidth(socket, saturation_ks=())

    predictor = HierarchyPredictor(
        capacity_curve(cs, cap_calib), bandwidth_curve(bw, bw_calib)
    )

    print()
    print("predictions for alternative memory hierarchies:")
    for scenario in (
        MachineScenario.from_socket(xeon20mb(scale=1), name="Xeon20MB (today)"),
        MachineScenario.from_socket(exascale_node(scale=1), name="Exascale-era node"),
        MachineScenario("half-cache variant", l3_bytes=10 * 2**20, bandwidth_Bps=17e9),
        MachineScenario("half-bandwidth variant", l3_bytes=20 * 2**20, bandwidth_Bps=8.5e9),
    ):
        result = predictor.predict(scenario)
        print("  " + result.summary())

    print()
    print("The starved node pays on both axes; the half-cache and")
    print("half-bandwidth variants separate the two sensitivities —")
    print("exactly the decomposition a Bubble-Up-style aggregate probe")
    print("cannot provide (paper Section V).")


if __name__ == "__main__":
    main()
