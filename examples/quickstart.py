#!/usr/bin/env python
"""Quickstart: measure a workload's memory-resource use.

The core loop of the paper in ~40 lines: take a workload, run it
against increasing storage/bandwidth interference on the simulated
Xeon20MB socket, and read off how much shared cache and memory bandwidth
it actually uses.

Run:  python examples/quickstart.py
"""

from repro import ActiveMeasurement, calibrate_bandwidth, calibrate_capacity, xeon20mb
from repro.core import (
    bandwidth_curve,
    capacity_curve,
    render_campaign,
    resource_use,
)
from repro.units import MiB, as_GBps, fmt_bytes
from repro.workloads import ProbabilisticBenchmark, UniformDist


def main() -> None:
    socket = xeon20mb()
    print(socket.describe())
    print()

    # The workload under test: uniform random reads over 40 MB — a
    # capacity-hungry kernel (think: hash join, graph traversal).
    workload = lambda: ProbabilisticBenchmark(UniformDist(), 40 * MiB)

    am = ActiveMeasurement(
        socket, workload, warmup_accesses=40_000, measure_accesses=25_000, seed=7
    )
    print("sweeping CSThr interference (storage)...")
    cs = am.capacity_sweep()
    print("sweeping BWThr interference (bandwidth)...")
    bw = am.bandwidth_sweep()

    print("calibrating interference threads (Sections III-A / III-C3)...")
    cap_calib = calibrate_capacity(
        socket, warmup_accesses=40_000, measure_accesses=25_000
    )
    bw_calib = calibrate_bandwidth(socket)

    print()
    print(render_campaign(cs, bw, cap_calib, bw_calib,
                          header="Active Measurement: Uniform 40 MB probe"))

    cap_use = resource_use(capacity_curve(cs, cap_calib), threshold=0.04)
    bw_use = resource_use(bandwidth_curve(bw, bw_calib), threshold=0.04)
    print()
    print(
        f"L3 capacity use:     {fmt_bytes(cap_use.lower)} - {fmt_bytes(cap_use.upper)}"
    )
    print(
        f"memory bandwidth use: {as_GBps(bw_use.lower):.1f} - "
        f"{as_GBps(bw_use.upper):.1f} GB/s"
    )


if __name__ == "__main__":
    main()
