#!/usr/bin/env python
"""Characterising the memory hierarchy from software.

The paper's related work (refs [23][24], Yotov et al.'s X-Ray) measures
hardware parameters with microbenchmarks. This example runs the
pointer-chase probe at a ladder of working-set sizes on the simulated
socket and recovers the L1/L2/L3/DRAM latencies and capacities — a
self-check that the simulated hierarchy is observable from software the
way real hardware is.

Run:  python examples/latency_ladder.py
"""

from repro import SocketSimulator, xeon20mb
from repro.analysis import format_table, line_chart
from repro.units import KiB, fmt_bytes
from repro.workloads import PointerChase


def measured_latency(socket, buf_bytes, seed=5):
    sim = SocketSimulator(socket, seed=seed)
    core = sim.add_thread(PointerChase(buffer_bytes=buf_bytes), main=True)
    sim.warmup(accesses=6_000)
    result = sim.measure(accesses=6_000)
    c = result.counters_of(core)
    return (c.elapsed_ns - c.compute_ns) / c.accesses


def main() -> None:
    socket = xeon20mb()
    print(socket.describe())
    print()

    sizes = [
        s * KiB
        for s in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)
    ]
    rows = []
    lats = []
    for size in sizes:
        lat = measured_latency(socket, size)
        rows.append((fmt_bytes(size), lat))
        lats.append(lat)

    print(format_table(
        ("working set", "latency ns/load"),
        rows,
        title="Pointer-chase latency ladder",
        float_fmt="{:.1f}",
    ))
    print()
    print(line_chart(
        {"latency": lats},
        x_labels=[fmt_bytes(s) for s in sizes],
        title="latency vs working set (log-ish steps)",
        y_label="ns/load",
    ))

    t = socket.timing
    print()
    print("hierarchy plateaus expected at "
          f"L1={t.l1_hit_ns}ns, L2={t.l2_hit_ns}ns, "
          f"L3={t.l3_hit_ns}ns, DRAM={t.dram_latency_ns}ns; the step")
    print(f"positions mark the (scaled) capacities: "
          f"L1={fmt_bytes(socket.l1.capacity_bytes)}, "
          f"L2={fmt_bytes(socket.l2.capacity_bytes)}, "
          f"L3={fmt_bytes(socket.l3.capacity_bytes)}.")


if __name__ == "__main__":
    main()
