#!/usr/bin/env python
"""Co-location advisor — the scheduling pay-off.

The paper's introduction argues resource-oriented measurement enables
"more intelligent work scheduling". This script profiles a small zoo of
workloads once, asks the advisor which pairs may share a socket within a
10% QoS bound, and then verifies the advice by actually co-running the
pairs on the simulator.

Run:  python examples/colocation_advisor.py
"""

from repro import calibrate_bandwidth, calibrate_capacity, xeon20mb
from repro.analysis import format_table
from repro.core.colocation import CoLocationAdvisor, profile_workload
from repro.engine import SocketSimulator
from repro.units import MiB
from repro.workloads import HotColdProbe, ProbabilisticBenchmark, UniformDist

WARM, MEAS = 30_000, 20_000


def zoo():
    return {
        "kv-cache (8MB resident)": lambda: HotColdProbe(8 * MiB, hot_fraction=1.0),
        "etl-mix (4MB + stream)": lambda: HotColdProbe(4 * MiB, hot_fraction=0.85),
        "analytics-scan (40MB)": lambda: ProbabilisticBenchmark(UniformDist(), 40 * MiB),
    }


def co_run(socket, fa, fb, seed=3):
    def solo(f):
        sim = SocketSimulator(socket, seed=seed)
        core = sim.add_thread(f(), main=True)
        sim.warmup(accesses=WARM)
        r = sim.measure(accesses=MEAS)
        return r.counters_of(core).elapsed_ns / r.counters_of(core).accesses

    ba, bb = solo(fa), solo(fb)
    sim = SocketSimulator(socket, seed=seed)
    ca, cb = sim.add_thread(fa(), main=True), sim.add_thread(fb(), main=True)
    sim.warmup(accesses=WARM)
    r = sim.measure(accesses=MEAS)
    ta = r.counters_of(ca).elapsed_ns / r.counters_of(ca).accesses
    tb = r.counters_of(cb).elapsed_ns / r.counters_of(cb).accesses
    return max(ta / ba, tb / bb)


def main() -> None:
    socket = xeon20mb()
    workloads = zoo()

    print("calibrating interference threads ...")
    cap_calib = calibrate_capacity(socket, warmup_accesses=WARM, measure_accesses=MEAS)
    bw_calib = calibrate_bandwidth(socket, saturation_ks=())

    print("profiling workloads ...")
    profiles = {
        name: profile_workload(
            name, socket, factory, cap_calib, bw_calib,
            cs_ks=[0, 2, 4, 5], bw_ks=[0, 1, 2],
            warmup_accesses=WARM, measure_accesses=MEAS,
        )
        for name, factory in workloads.items()
    }
    for p in profiles.values():
        print("  " + p.describe())

    advisor = CoLocationAdvisor(socket, qos_slowdown=1.10)
    names = list(workloads)
    rows = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a, b = names[i], names[j]
            decision = advisor.predict_pair(profiles[a], profiles[b])
            actual = co_run(socket, workloads[a], workloads[b])
            rows.append(
                (
                    f"{a} + {b}",
                    decision.worst,
                    actual,
                    "co-locate" if decision.worst <= advisor.qos else "isolate",
                )
            )

    print()
    print(format_table(
        ("pairing", "predicted worst", "actual worst", "advice"),
        rows,
        title="Co-location advice (QoS bound: 10% slowdown)",
        float_fmt="{:.3f}",
    ))

    plan, solo = advisor.plan(list(profiles.values()))
    print()
    print("placement plan:")
    for d in plan:
        print(f"  socket: {d.tenants[0]} + {d.tenants[1]} "
              f"(predicted worst x{d.worst:.3f})")
    for name in solo:
        print(f"  socket: {name} (isolated)")


if __name__ == "__main__":
    main()
