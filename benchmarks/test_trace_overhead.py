"""Tracing overhead budget: enabled tracing must cost <3% engine throughput.

The span layer keeps itself off the per-access hot loop (bench spans sit
at (shape, kernel, round) granularity; engine spans at warmup/measure),
so an enabled tracer should be throughput-neutral on ``repro bench
engine``. This bench holds that budget: it interleaves traced and
untraced engine-bench runs and compares best-of rates per (shape,
kernel), failing if tracing costs more than the 3% budget the CI bench
job enforces against ``BENCH_engine.json``.
"""

import math

import pytest

from repro.bench import run_engine_bench
from repro.obs import configure_tracer, reset_tracer

#: The published budget: traced throughput >= 97% of untraced.
MAX_OVERHEAD = 0.03

N_ACCESSES = 60_000
ROUNDS = 2
REPEATS = 3

#: Fast subset (the ``--shapes`` flag): two single-core shapes plus one
#: multicore shape keep the interleaved traced/untraced repeats quick
#: while still covering the engine spans of both scheduler paths.
SHAPES = ("random", "stream", "mc_csthr")


def _rates(**kwargs):
    baseline = run_engine_bench(
        n_accesses=N_ACCESSES, rounds=ROUNDS, shapes=SHAPES, **kwargs
    )
    return {
        (shape, kernel): rate
        for section in ("accesses_per_sec", "multicore_accesses_per_sec")
        for shape, by_kernel in baseline[section].items()
        for kernel, rate in by_kernel.items()
    }


def _best_of(runs):
    keys = runs[0].keys()
    return {k: max(r[k] for r in runs) for k in keys}


@pytest.mark.benchmark(group="trace-overhead")
def test_tracing_overhead_within_budget(tmp_path, benchmark):
    # Interleave traced/untraced repeats so drift (thermal, noisy
    # neighbours) hits both sides equally; best-of per cell discards
    # per-run interference, the standard microbenchmark convention.
    untraced_runs, traced_runs = [], []
    for i in range(REPEATS):
        reset_tracer()
        untraced_runs.append(_rates())
        configure_tracer(tmp_path / f"overhead-{i}.jsonl")
        traced_runs.append(_rates())
    reset_tracer()

    untraced = _best_of(untraced_runs)
    traced = _best_of(traced_runs)
    # The budget is on whole-bench throughput (the BENCH_engine.json
    # comparison), so judge the geometric mean of the per-cell ratios —
    # a single slow cell at this access count is measurement noise, and
    # noise cannot systematically favour the untraced side.
    ratios = {cell: traced[cell] / rate for cell, rate in untraced.items()}
    geomean = math.prod(ratios.values()) ** (1.0 / len(ratios))
    overhead = 1.0 - geomean
    worst_cell = min(ratios, key=ratios.get)
    print(f"\ntracing overhead: {overhead * 100:.2f}% geomean "
          f"(worst cell {worst_cell}: {(1 - ratios[worst_cell]) * 100:.2f}%, "
          f"budget {MAX_OVERHEAD * 100:.0f}%)")

    def report():
        return overhead

    benchmark.pedantic(report, rounds=1, iterations=1)
    assert overhead < MAX_OVERHEAD, (
        f"tracing costs {overhead * 100:.1f}% geomean engine throughput, "
        f"budget is {MAX_OVERHEAD * 100:.0f}%"
    )
