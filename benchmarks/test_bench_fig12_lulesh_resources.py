"""Fig. 12: Lulesh per-process resource consumption by mapping.

Paper: 22^3 processes need ~3.5-7 MB; 36^3 processes 7-20 MB; bandwidth
use grows as processes spread out.
"""

from repro.experiments import run_fig12
from repro.experiments.fig10_fig12 import render


def test_bench_fig12_lulesh_resources(run_experiment):
    record = run_experiment(run_fig12, render=render)
    tables = record.data["use_tables"]
    small = tables["22"]["1"]["capacity_mb"]
    large = tables["36"]["1"]["capacity_mb"]
    # The bigger domain needs more cache (paper: 3.5-7 vs 7-20 MB).
    assert large["upper"] >= small["upper"]
    assert small["upper"] <= 9.0
