"""Fig. 9: MCB degradation across mappings and particle counts.

Paper: little degradation with 1-3 CSThrs, 20-25% with 4-5; denser
mappings degrade at fewer CSThrs; bandwidth impact peaks near 90k
particles.
"""

from repro.experiments import run_fig9
from repro.experiments.fig9 import render


def test_bench_fig9_mcb(run_experiment):
    record = run_experiment(run_fig9, render=render)
    bottom = record.data["bottom_times_ns"]
    for n, kinds in bottom.items():
        cs = kinds["cs"]
        base = cs["0"]
        # Little degradation through 3 CSThrs...
        assert cs["3"] < base * 1.06
        # ...significant at 5.
        assert cs["5"] > base * 1.08
