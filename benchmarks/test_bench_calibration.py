"""Table I + Sections II-A/III-A/III-C3: machine & interference calibration.

Paper values: BWThr = 2.8 GB/s, STREAM = 17 GB/s, 7 threads saturate,
capacity ladder 20/15/12/7/5/2.5 MB for 0-5 CSThrs.
"""

import pytest

from repro.experiments import run_calibration
from repro.experiments.calibration import render


def test_bench_calibration(run_experiment):
    record = run_experiment(run_calibration, render=render)
    # Shape assertions: the reproduction must preserve the paper's anchors.
    assert record.data["bwthr_unit_GBps"] == pytest.approx(2.8, rel=0.25)
    assert record.data["stream_peak_GBps"] == pytest.approx(17.0, rel=0.25)
    ladder = record.data["capacity_ladder_mb"]
    assert ladder["5"] < ladder["3"] < ladder["1"] < ladder["0"]
