"""Fig. 5: |measured - Eq.4 predicted| L3 miss rate vs buffer size.

Paper: mean error < 10% everywhere; mean+sigma <= 15%; error shrinks as
buffers grow (the full-associativity assumption matters less once most
accesses miss).
"""

from repro.experiments import run_fig5
from repro.experiments.fig5 import render


def test_bench_fig5_model_error(run_experiment):
    record = run_experiment(run_fig5, render=render)
    errs = record.data["mean_abs_error"]
    sig = record.data["std_abs_error"]
    assert max(errs) < 0.12
    assert max(e + s for e, s in zip(errs, sig)) < 0.2
    # Error at the largest buffer must not exceed the smallest-buffer error.
    assert errs[-1] <= errs[0] + 0.02
