"""Extension: robust onset detection vs the fixed 5% threshold.

Quantifies the false-onset rate of the seed's single-trial threshold
rule under synthetic heavy-tailed noise, and checks the rank-test
detector suppresses those false onsets without losing real ones.
"""

from repro.experiments import run_robustness
from repro.experiments.robustness import render


def test_bench_robust_onset(run_experiment):
    record = run_experiment(run_robustness, render=render)
    levels = record.data["noise_levels"]
    for name, r in levels.items():
        # The statistical detector must never false-fire more than the
        # naive rule, and must hold its false rate near alpha.
        assert r["robust_false_rate"] <= r["naive_false_rate"], name
        assert r["robust_false_rate"] <= 0.05, name
    # Under heavy noise the naive rule degenerates; robust must not.
    assert levels["hostile"]["naive_false_rate"] >= 0.25
    assert levels["hostile"]["robust_false_rate"] <= 0.05
    # Real onsets still get found in quiet conditions.
    assert levels["quiet"]["robust_detect_rate"] >= 0.85
