"""Simulator-throughput microbenchmarks.

Unlike the figure benches (one-shot measurement campaigns), these are
true microbenchmarks of the fused simulation kernel — the quantity that
bounds every experiment's wall time. They cover both kernels behind
``repro.engine.arraypath.make_socket_kernel`` (the array engine and the
reference list engine) on the three traffic shapes that dominate the
paper's campaigns:

- ``random``:        CSThr-shaped uniform-random writes, prefetch off;
- ``stream``:        BWThr-shaped constant-stride reads, prefetch on;
- ``stream_writes``: the same stride stream but writing, so every
                     eviction is a dirty writeback and the prefetcher,
                     arbiter fill *and* writeback paths are all hot.

``repro bench engine`` (``repro.bench``) runs the same shapes standalone
and records the machine-readable baseline in ``BENCH_engine.json``.

The multicore gate at the bottom covers the macro-stepped scheduler
(``REPRO_SCHED=macro``, the default): on the multicore bench shapes it
must sustain at least 3x the chunk-at-a-time rate — the headline
guarantee recorded in ``BENCH_engine.json``'s
``speedup_macro_vs_chunk``.
"""

import time

import numpy as np
import pytest

from repro.bench import MC_SHAPES, _sched_env, build_mc_scheduler
from repro.config import xeon20mb
from repro.engine import AccessChunk, ArraySocket, FastSocket

N_ACCESSES = 50_000


def _random_chunks(seed, n=N_ACCESSES, quantum=256):
    """CSThr-shaped traffic: uniform random over 4096 lines."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(1024, 1024 + 4096, size=n, dtype=np.int64)
    return [
        AccessChunk(
            lines=lines[i : i + quantum],
            is_write=True,
            ops_per_access=6,
            prefetchable=False,
        )
        for i in range(0, n, quantum)
    ]


def _stream_chunks(n=N_ACCESSES, quantum=128, is_write=False):
    """BWThr-shaped traffic: constant-stride streaming."""
    chunks = []
    pos = 1_000_000
    for i in range(0, n, quantum):
        chunks.append(
            AccessChunk(
                lines=np.arange(pos, pos + 7 * quantum, 7, dtype=np.int64),
                is_write=is_write,
                ops_per_access=39,
                stream_id=1,
            )
        )
        pos += 7 * quantum
    return chunks


SHAPES = {
    "random": lambda: _random_chunks(seed=1),
    "stream": lambda: _stream_chunks(),
    "stream_writes": lambda: _stream_chunks(is_write=True),
}

KERNELS = {
    "lists": lambda socket: FastSocket(socket),
    "arrays": lambda socket: ArraySocket(socket),
}


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_bench_kernel_throughput(benchmark, shape, kernel):
    socket = xeon20mb()
    chunks = SHAPES[shape]()

    def run():
        fast = KERNELS[kernel](socket)
        t = 0.0
        for c in chunks:
            t = fast.run_chunk(0, c, t)
        return t

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    rate = N_ACCESSES / benchmark.stats["median"]
    # Regression guard: either kernel must stay above 200k accesses/s
    # even on slow CI machines (typical: 0.5-1.5M acc/s for the list
    # kernel, 4-8M acc/s for the compiled array kernel).
    assert rate > 200_000, f"{kernel} kernel throughput regressed: {rate:.0f} acc/s"


def test_bench_owner_tracking_overhead(benchmark):
    """Owner attribution costs ~20-30%; fail if it blows past 2.5x."""
    socket = xeon20mb()
    chunks = _random_chunks(seed=2, n=20_000)

    import time

    def run_with(track):
        fast = ArraySocket(socket, track_owner=track)
        t0 = time.perf_counter()
        t = 0.0
        for c in chunks:
            t = fast.run_chunk(0, c, t)
        return time.perf_counter() - t0

    plain = min(run_with(False) for _ in range(3))
    tracked = benchmark.pedantic(lambda: run_with(True), rounds=3, iterations=1)
    assert tracked < plain * 2.5


#: The committed guarantee: macro-stepping buys at least 3x on the
#: multicore bench shapes (measured 4.5-11x; the margin absorbs CI
#: machine noise).
MIN_MACRO_SPEEDUP = 3.0

MC_BUDGET = 40_000
MC_ROUNDS = 3


def _mc_rate(shape, env):
    socket = xeon20mb()
    best = float("inf")
    for _ in range(MC_ROUNDS):
        with _sched_env(env):
            sched = build_mc_scheduler(shape, socket)
            t0 = time.perf_counter()
            outcome = sched.run(main_access_budget=MC_BUDGET)
            best = min(best, time.perf_counter() - t0)
    return outcome.total_accesses / best


@pytest.mark.parametrize("shape", sorted(MC_SHAPES))
def test_bench_multicore_macro_speedup(benchmark, shape):
    """Macro-stepped scheduling >= 3x chunk-at-a-time on every shape."""
    chunk = _mc_rate(shape, {"REPRO_SCHED": "chunk"})
    macro = _mc_rate(shape, {"REPRO_SCHED": "macro"})

    def report():
        return macro

    benchmark.pedantic(report, rounds=1, iterations=1)
    speedup = macro / chunk
    print(f"\n{shape}: chunk {chunk:,.0f} acc/s, macro {macro:,.0f} acc/s "
          f"({speedup:.2f}x)")
    assert speedup >= MIN_MACRO_SPEEDUP, (
        f"{shape}: macro scheduler is only {speedup:.2f}x chunk-at-a-time "
        f"(floor {MIN_MACRO_SPEEDUP}x)"
    )


#: Batched sweeps must never be slower than per-point macro sweeps.
#: The honest margin here is deliberately thin: PR 5's macro scheduler
#: already amortised the per-chunk ctypes crossings, so what batching
#: removes is per-point session overhead (simulator construction,
#: window setup, one C call per scheduling round instead of one per
#: point-round). On the 9-point bench campaign that is ~1.2-1.4x —
#: the remaining floor (arena/RNG/workload construction, chunk
#: generation, the C step itself) is pinned by the bit-identity
#: contract and paid equally by both modes. 1.05x is a regression
#: gate, not a marketing number.
MIN_SWEEP_SPEEDUP = 1.05

SWEEP_GATE_ROUNDS = 3


def test_bench_sweep_batched_speedup(benchmark):
    """Batched campaign >= 1.05x the per-point macro campaign."""
    from repro.bench import run_sweep_bench

    rates = run_sweep_bench(rounds=SWEEP_GATE_ROUNDS)
    per_point = rates["per-point-macro"]
    batched = rates["batched"]

    def report():
        return batched

    benchmark.pedantic(report, rounds=1, iterations=1)
    speedup = batched / per_point
    print(f"\nsweep: per-point {per_point:,.0f} acc/s, "
          f"batched {batched:,.0f} acc/s ({speedup:.2f}x)")
    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"sweep: batched backend is only {speedup:.2f}x per-point macro "
        f"(floor {MIN_SWEEP_SPEEDUP}x)"
    )
