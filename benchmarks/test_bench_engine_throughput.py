"""Simulator-throughput microbenchmarks.

Unlike the figure benches (one-shot measurement campaigns), these are
true microbenchmarks of the fused simulation kernel — the quantity that
bounds every experiment's wall time. They guard against performance
regressions in ``repro.engine.fastpath``.
"""

import numpy as np
import pytest

from repro.config import xeon20mb
from repro.engine import AccessChunk, FastSocket

N_ACCESSES = 50_000


def _random_chunks(socket, seed, n=N_ACCESSES, quantum=256):
    """CSThr-shaped traffic: uniform random over 4096 lines."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(1024, 1024 + 4096, size=n)
    chunks = []
    for i in range(0, n, quantum):
        c = AccessChunk(
            lines=lines[i : i + quantum].tolist(), is_write=True, ops_per_access=6
        )
        c.prefetchable = False
        chunks.append(c)
    return chunks


def _stream_chunks(socket, n=N_ACCESSES, quantum=128):
    """BWThr-shaped traffic: constant-stride streaming."""
    chunks = []
    pos = 1_000_000
    for i in range(0, n, quantum):
        chunks.append(
            AccessChunk(
                lines=list(range(pos, pos + 7 * quantum, 7)),
                is_write=True,
                ops_per_access=39,
                stream_id=1,
            )
        )
        pos += 7 * quantum
    return chunks


@pytest.mark.parametrize("shape", ["random", "stream"])
def test_bench_fastpath_throughput(benchmark, shape):
    socket = xeon20mb()
    chunks = (
        _random_chunks(socket, seed=1) if shape == "random" else _stream_chunks(socket)
    )

    def run():
        fast = FastSocket(socket)
        t = 0.0
        for c in chunks:
            t = fast.run_chunk(0, c, t)
        return t

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    rate = N_ACCESSES / benchmark.stats["median"]
    # Regression guard: the kernel must stay above 200k accesses/s even
    # on slow CI machines (typical: 0.5-1.5M acc/s).
    assert rate > 200_000, f"fastpath throughput regressed: {rate:.0f} acc/s"


def test_bench_owner_tracking_overhead(benchmark):
    """Owner attribution costs ~20-30%; fail if it blows past 2.5x."""
    socket = xeon20mb()
    chunks = _random_chunks(socket, seed=2, n=20_000)

    import time

    def run_with(track):
        fast = FastSocket(socket, track_owner=track)
        t0 = time.perf_counter()
        t = 0.0
        for c in chunks:
            t = fast.run_chunk(0, c, t)
        return time.perf_counter() - t0

    plain = min(run_with(False) for _ in range(3))
    tracked = benchmark.pedantic(lambda: run_with(True), rounds=3, iterations=1)
    assert tracked < plain * 2.5
