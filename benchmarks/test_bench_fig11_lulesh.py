"""Fig. 11: Lulesh degradation across mappings and domain sizes.

Paper: 22^3 tolerates 1-2 CSThrs (<5%) and loses >10% at 5; domains of
edge >= 32 degrade >10% under 1-2 BWThrs; the largest domains overflow
the L3 under any storage interference.
"""

from repro.experiments import run_fig11
from repro.experiments.fig11 import render


def test_bench_fig11_lulesh(run_experiment):
    record = run_experiment(run_fig11, render=render)
    bottom = record.data["bottom_times_ns"]
    small = bottom[min(bottom, key=int)]
    large = bottom[max(bottom, key=int)]
    # Small domains shrug off 2 CSThrs; large ones do not shrug off 5.
    assert small["cs"]["2"] < small["cs"]["0"] * 1.05
    assert large["cs"]["5"] > large["cs"]["0"] * 1.10
    # Large domains are bandwidth sensitive; small ones are not.
    assert large["bw"]["2"] > large["bw"]["0"] * 1.05
    assert small["bw"]["2"] < small["bw"]["0"] * 1.05
