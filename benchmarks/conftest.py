"""Benchmark harness plumbing.

Every bench regenerates one of the paper's tables/figures:

- it runs the experiment driver once (``rounds=1`` — these are
  measurement campaigns, not microbenchmarks; their wall time is the
  quantity pytest-benchmark records),
- prints the reproduced series in the same shape the paper reports, and
- saves the structured record under ``results/``.

Select the grid with ``REPRO_MODE`` in {smoke, paper, full}; smoke is
the default and completes in minutes.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentRecord
from repro.experiments.common import DEFAULT_RESULTS_DIR


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run one experiment driver under pytest-benchmark and persist it."""

    def runner(fn, render=None, **kwargs) -> ExperimentRecord:
        record = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
        path = record.save(DEFAULT_RESULTS_DIR)
        with capsys.disabled():
            print()
            print("=" * 72)
            print(record.title)
            print("=" * 72)
            if render is not None:
                print(render(record))
            for note in record.notes:
                print(f"  * {note}")
            print(f"  [record: {path}]")
        return record

    return runner
