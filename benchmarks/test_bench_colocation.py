"""Extension: co-location advice verified against simulated co-runs."""

from repro.experiments import run_colocation
from repro.experiments.colocation import render


def test_bench_colocation_advisor(run_experiment):
    record = run_experiment(run_colocation, render=render)
    # Predictions must track ground truth within ~0.2 worst-slowdown on
    # average, and QoS verdicts must mostly agree.
    assert record.data["mean_abs_error"] < 0.2
    assert record.data["qos_agreement"] >= 0.6
    # No prediction may be *optimistic* by more than 5% (a QoS advisor
    # must err conservative).
    for pair, r in record.data["pairs"].items():
        assert r["predicted_worst"] >= r["simulated_worst"] - 0.05, pair
