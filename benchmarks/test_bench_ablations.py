"""Ablations for DESIGN.md's called-out decisions: prefetch degree,
replacement policy, machine scale, BWThr capacity occupancy."""

import pytest

from repro.experiments import ablations


def test_bench_ablation_prefetch_degree(run_experiment):
    record = run_experiment(ablations.run_prefetch_ablation)
    unit = record.data["bwthr_unit_GBps"]
    # The prefetcher is what lifts BWThr toward 2.8 GB/s.
    assert unit["6"] > 1.4 * unit["0"]


def test_bench_ablation_replacement_policy(run_experiment):
    record = run_experiment(ablations.run_replacement_ablation)
    rates = record.data["miss_rate"]
    assert rates["lru"] == pytest.approx(record.data["eq4_prediction"], abs=0.05)
    # All policies within a few points of each other in the uniform regime.
    assert max(rates.values()) - min(rates.values()) < 0.06


def test_bench_ablation_machine_scale(run_experiment):
    record = run_experiment(ablations.run_scale_ablation)
    ladders = record.data["ladders_mb"]
    for k in ("0", "1", "3", "5"):
        assert ladders["1/16"][k] == pytest.approx(ladders["1/32"][k], rel=0.35, abs=1.5)


def test_bench_ablation_orthogonality_margin(run_experiment):
    record = run_experiment(ablations.run_bwthr_capacity_ablation)
    occ = record.data["occupancy"]
    # CSThr's retained share shrinks monotonically with more BWThrs.
    shares = [occ[k]["csthr_l3_fraction"] for k in sorted(occ, key=int)]
    assert all(b <= a + 0.02 for a, b in zip(shares, shares[1:]))


def test_bench_ablation_noise_amplification(run_experiment):
    record = run_experiment(ablations.run_noise_ablation)
    inflation = record.data["noise_inflation"]
    ns = sorted(inflation, key=int)
    # Amplification grows monotonically with job scale.
    values = [inflation[n] for n in ns]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[-1] > values[0]


def test_bench_ablation_model_vs_trace(run_experiment):
    record = run_experiment(ablations.run_model_vs_trace_ablation)
    worst = max(
        v for dist in record.data["abs_error"].values() for v in dist.values()
    )
    # Eq. 4 tracks stack-distance ground truth within ~10 miss-rate points.
    assert worst < 0.12


def test_bench_ablation_set_sampling(run_experiment):
    record = run_experiment(ablations.run_sampling_ablation)
    worst = max(
        v for d in record.data["abs_error_vs_full"].values() for v in d.values()
    )
    # Sampling 1/32 of sets must track the full miss ratio closely.
    assert worst < 0.04


def test_bench_ablation_interleave_quantum(run_experiment):
    record = run_experiment(ablations.run_quantum_ablation)
    caps = list(record.data["effective_capacity_mb"].values())
    # The inverted capacity must be quantum-insensitive (within ~1.5 MB).
    assert max(caps) - min(caps) < 1.5


def test_bench_ablation_writeback_throttling(run_experiment):
    record = run_experiment(ablations.run_writeback_ablation)
    off = record.data["results"]["off"]
    on = record.data["results"]["on"]
    # Throttling writebacks can only reduce effective STREAM bandwidth.
    assert on["stream_peak_GBps"] <= off["stream_peak_GBps"] * 1.02
    # Throttling makes write-heavy interference strictly harsher; the
    # effect is material (this is why the choice is documented) but must
    # stay within small-multiple territory.
    ratio = on["csthr_under_5bw_ns_per_access"] / off["csthr_under_5bw_ns_per_access"]
    assert 0.9 < ratio < 3.5
