"""Extension: end-to-end measurement accuracy against ground truth.

The simulator enables the calibration experiment the paper could not
run: workloads with working sets known by construction, measured by the
full Active Measurement pipeline.
"""

from repro.experiments import run_detection_accuracy
from repro.experiments.detection import render


def test_bench_detection_accuracy(run_experiment):
    record = run_experiment(run_detection_accuracy, render=render)
    assert record.data["containment_rate"] >= 0.67
    # Measured brackets must be ordered consistently with the truth:
    results = record.data["results"]
    sizes = sorted(results, key=int)
    lowers = [results[s]["measured_lower_mb"] for s in sizes]
    assert all(b >= a for a, b in zip(lowers, lowers[1:]))
