"""Figs. 7-8: orthogonality of BWThr and CSThr.

Paper: BWThr flat under 0-5 CSThrs; CSThr unaffected by 1 BWThr, slightly
by 2, significantly by 3+.
"""

from repro.experiments import run_fig7_fig8
from repro.experiments.fig7_fig8 import render


def test_bench_fig7_fig8_orthogonality(run_experiment):
    record = run_experiment(run_fig7_fig8, render=render)
    assert record.data["bwthr_flat"]
    assert record.data["capacity_neutral_bwthrs"] >= 1
    f8 = record.data["fig8"]["csthr_time_per_access_ns"]
    # CSThr at 5 BWThrs is significantly slower than alone; at 1 it is not.
    assert f8[1] < f8[0] * 1.05
    assert f8[5] > f8[0] * 1.15
