"""Fig. 10: MCB per-process resource consumption by mapping.

Paper: capacity use ~3.75-7 MB/process regardless of mapping; bandwidth
use rises steeply as processes spread out (3.5-4.25 GB/s at p=4 up to
11.4-14.2 GB/s at p=1).
"""

from repro.experiments import run_fig10
from repro.experiments.fig10_fig12 import render


def test_bench_fig10_mcb_resources(run_experiment):
    record = run_experiment(run_fig10, render=render)
    table = record.data["use_tables"]["20000"]
    p1 = table["1"]
    # Capacity bracket overlaps the paper's 4-7 MB.
    assert p1["capacity_mb"]["upper"] >= 4.0
    assert p1["capacity_mb"]["lower"] <= 9.0
    if "4" in table:
        p4 = table["4"]
        # Bandwidth per process falls as processes share a socket.
        assert (
            p4["bandwidth_GBps"]["upper"] < p1["bandwidth_GBps"]["upper"]
        )
