"""Fig. 6: effective L3 capacity under 0-5 CSThrs x compute intensity.

Paper ladder: 20 / 15 / 12 / 7 / 5 / 2.5 MB. The reproduction must give a
monotone ladder whose k=1..3 rungs land within ~25% of the paper's.
"""

import pytest

from repro.experiments import run_fig6
from repro.experiments.fig6 import render


def test_bench_fig6_capacity_grid(run_experiment):
    record = run_experiment(run_fig6, render=render)
    ladder = {int(k): v for k, v in record.data["capacity_ladder_mb"].items()}
    assert all(ladder[k + 1] < ladder[k] for k in range(5))
    assert ladder[1] == pytest.approx(15.0, rel=0.25)
    assert ladder[2] == pytest.approx(12.0, rel=0.25)
    assert ladder[3] == pytest.approx(7.0, rel=0.35)
