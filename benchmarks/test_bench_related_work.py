"""Section V: the bubble probe cannot decompose; the 2-D probes can."""

from repro.experiments import run_bubble_comparison
from repro.experiments.related_work import render


def test_bench_related_work_bubble(run_experiment):
    record = run_experiment(run_bubble_comparison, render=render)
    curves = record.data["slowdown_curves"]
    cap, bw = curves["capacity_victim"], curves["bandwidth_victim"]
    # The bubble degrades both victims along its single knob.
    assert cap["bubble"][-1] > 1.1 and bw["bubble"][-1] > 1.1
    # The 2-D probes produce opposite signatures:
    #   capacity victim: storage onset at k=5, bandwidth flat at k=1.
    assert cap["cs"][-1] > 1.08
    assert cap["bw"][1] < 1.02
    #   bandwidth victim: bandwidth onset by k<=2, storage flat at k=3.
    assert bw["bw"][-1] > 1.03
    assert bw["cs"][1] < 1.03
